"""Tests for the device-level schedulers (VAS, PAS, Sprinkler variants)."""

import pytest

from repro.core.pas import PhysicalAddressScheduler
from repro.core.policies import SCHEDULER_NAMES, make_scheduler
from repro.core.scheduler import SchedulerContext
from repro.core.sprinkler import Sprinkler
from repro.core.vas import VirtualAddressScheduler
from repro.flash.channel import Channel
from repro.flash.chip import FlashChip
from repro.flash.commands import FlashOp
from repro.flash.controller import FlashController
from repro.flash.geometry import PhysicalPageAddress
from repro.flash.request import MemoryRequest
from repro.flash.transaction import TransactionBuilder
from repro.nvmhc.tag import Tag
from repro.workloads.request import IOKind, IORequest


@pytest.fixture
def context(small_geometry, fast_timing):
    builder = TransactionBuilder(small_geometry, fast_timing)
    controllers = {}
    for channel_id in range(small_geometry.num_channels):
        chips = {
            key: FlashChip(key, small_geometry)
            for key in small_geometry.iter_chip_keys()
            if key[0] == channel_id
        }
        controllers[channel_id] = FlashController(Channel(channel_id), chips, builder)
    return SchedulerContext(geometry=small_geometry, controllers=controllers)


def build_tag(chip_pages, kind=IOKind.READ, arrival=0, fua=False):
    """Build a tag whose memory requests target the given (chip, die, plane) tuples."""
    io = IORequest(
        kind=kind,
        offset_bytes=0,
        size_bytes=2048 * max(1, len(chip_pages)),
        arrival_ns=arrival,
        force_unit_access=fua,
    )
    tag = Tag(io=io, enqueued_at_ns=arrival)
    op = FlashOp.PROGRAM if kind is IOKind.WRITE else FlashOp.READ
    for index, (chip, die, plane) in enumerate(chip_pages):
        channel, chip_idx = chip
        request = MemoryRequest(
            io_id=io.io_id,
            op=op,
            lpn=index,
            size_bytes=2048,
            address=PhysicalPageAddress(channel, chip_idx, die, plane, 0, index),
        )
        tag.memory_requests.append(request)
        tag.by_chip.setdefault(chip, []).append(request)
    return tag


def drain(scheduler, limit=64, now=0):
    """Pull compositions until the scheduler stalls, marking them composed."""
    picked = []
    for _ in range(limit):
        request = scheduler.next_composition(now)
        if request is None:
            break
        request.composed_at_ns = now
        tag = next((t for t in scheduler.tags if t.io_id == request.io_id), None)
        if tag is not None:
            tag.composed_count += 1
        picked.append(request)
    return picked


class TestSchedulerContext:
    def test_controller_for_and_outstanding(self, context):
        controller = context.controller_for((1, 0))
        assert controller is context.controllers[1]
        assert context.outstanding((1, 0)) == 0
        assert not context.chip_has_outstanding((1, 0))


class TestVAS:
    def test_strict_fifo_order(self, context):
        scheduler = VirtualAddressScheduler(context)
        first = build_tag([((0, 0), 0, 0), ((1, 0), 0, 0)])
        second = build_tag([((0, 1), 0, 0)])
        scheduler.register_tag(first, 0)
        scheduler.register_tag(second, 0)
        picked = drain(scheduler)
        assert [req.io_id for req in picked[:2]] == [first.io_id, first.io_id]
        assert picked[2].io_id == second.io_id

    def test_blocks_on_chip_conflict(self, context):
        scheduler = VirtualAddressScheduler(context)
        blocker = build_tag([((0, 0), 0, 0)])
        scheduler.register_tag(blocker, 0)
        request = scheduler.next_composition(0)
        request.composed_at_ns = 0
        blocker.composed_count += 1
        # Commit the blocker to the controller: chip (0,0) now has outstanding work.
        context.controllers[0].commit(request, 0)
        conflicting = build_tag([((0, 0), 1, 1), ((1, 1), 0, 0)])
        scheduler.register_tag(conflicting, 0)
        # VAS refuses to start the next I/O while any of its chips is busy.
        assert scheduler.next_composition(0) is None

    def test_unblocks_after_completion(self, context):
        scheduler = VirtualAddressScheduler(context)
        blocker = build_tag([((0, 0), 0, 0)])
        scheduler.register_tag(blocker, 0)
        request = scheduler.next_composition(0)
        request.composed_at_ns = 0
        blocker.composed_count += 1
        controller = context.controllers[0]
        controller.commit(request, 0)
        conflicting = build_tag([((0, 0), 1, 1)])
        scheduler.register_tag(conflicting, 0)
        assert scheduler.next_composition(0) is None
        controller.start_transaction((0, 0), 0)
        controller.finish_transaction((0, 0), 100)
        assert scheduler.next_composition(100) is not None

    def test_empty_queue(self, context):
        scheduler = VirtualAddressScheduler(context)
        assert scheduler.next_composition(0) is None

    def test_retire_removes_tag(self, context):
        scheduler = VirtualAddressScheduler(context)
        tag = build_tag([((0, 0), 0, 0)])
        scheduler.register_tag(tag, 0)
        scheduler.on_tag_retired(tag)
        assert scheduler.tags == []


class TestPAS:
    def test_skips_conflicting_io(self, context):
        scheduler = PhysicalAddressScheduler(context)
        blocker = build_tag([((0, 0), 0, 0)])
        scheduler.register_tag(blocker, 0)
        request = scheduler.next_composition(0)
        request.composed_at_ns = 0
        blocker.composed_count += 1
        context.controllers[0].commit(request, 0)
        conflicting = build_tag([((0, 0), 1, 1)])
        independent = build_tag([((1, 1), 0, 0)])
        scheduler.register_tag(conflicting, 0)
        scheduler.register_tag(independent, 0)
        picked = scheduler.next_composition(0)
        assert picked.io_id == independent.io_id

    def test_finishes_started_io_first(self, context):
        scheduler = PhysicalAddressScheduler(context)
        big = build_tag([((0, 0), 0, 0), ((0, 0), 0, 1)])
        other = build_tag([((1, 1), 0, 0)])
        scheduler.register_tag(big, 0)
        scheduler.register_tag(other, 0)
        first = scheduler.next_composition(0)
        first.composed_at_ns = 0
        big.composed_count += 1
        second = scheduler.next_composition(0)
        assert second.io_id == big.io_id

    def test_stalls_when_everything_conflicts(self, context):
        scheduler = PhysicalAddressScheduler(context)
        blocker = build_tag([((0, 0), 0, 0)])
        scheduler.register_tag(blocker, 0)
        request = scheduler.next_composition(0)
        request.composed_at_ns = 0
        blocker.composed_count += 1
        context.controllers[0].commit(request, 0)
        conflicting = build_tag([((0, 0), 1, 1)])
        scheduler.register_tag(conflicting, 0)
        assert scheduler.next_composition(0) is None

    def test_does_not_bypass_fua(self, context):
        scheduler = PhysicalAddressScheduler(context)
        blocker = build_tag([((0, 0), 0, 0)])
        scheduler.register_tag(blocker, 0)
        request = scheduler.next_composition(0)
        request.composed_at_ns = 0
        blocker.composed_count += 1
        context.controllers[0].commit(request, 0)
        fua_tag = build_tag([((0, 0), 1, 0)], fua=True)
        later = build_tag([((1, 1), 0, 0)])
        scheduler.register_tag(fua_tag, 0)
        scheduler.register_tag(later, 0)
        # The conflicting FUA request blocks reordering past it.
        assert scheduler.next_composition(0) is None


class TestSprinklerVariants:
    def test_names_and_flags(self, context):
        assert Sprinkler(context, use_rios=False, use_faro=True).name == "SPK1"
        assert Sprinkler(context, use_rios=True, use_faro=False).name == "SPK2"
        assert Sprinkler(context, use_rios=True, use_faro=True).name == "SPK3"
        assert Sprinkler(context, use_rios=True, use_faro=True).allows_overcommit

    def test_spk2_spreads_across_chips(self, context):
        scheduler = Sprinkler(context, use_rios=True, use_faro=False)
        # One I/O with two requests per chip on two different chips.
        tag = build_tag(
            [((0, 0), 0, 0), ((0, 0), 0, 1), ((1, 0), 0, 0), ((1, 0), 0, 1)]
        )
        scheduler.register_tag(tag, 0)
        picked = drain(scheduler, limit=2)
        assert picked[0].chip_key != picked[1].chip_key

    def test_spk3_bursts_per_chip(self, context):
        scheduler = Sprinkler(context, use_rios=True, use_faro=True)
        tag = build_tag(
            [((0, 0), 0, 0), ((0, 0), 1, 1), ((1, 0), 0, 0), ((1, 0), 1, 1)]
        )
        scheduler.register_tag(tag, 0)
        picked = drain(scheduler, limit=2)
        # FARO over-commits the whole chip burst before moving on.
        assert picked[0].chip_key == picked[1].chip_key

    def test_spk3_burst_extends_die_plane_coverage_first(self, context):
        scheduler = Sprinkler(context, use_rios=True, use_faro=True)
        tag = build_tag(
            [((0, 0), 0, 0), ((0, 0), 0, 0), ((0, 0), 1, 1)]
        )
        scheduler.register_tag(tag, 0)
        picked = drain(scheduler, limit=2)
        targets = {(req.address.die, req.address.plane) for req in picked}
        assert targets == {(0, 0), (1, 1)}

    def test_spk1_prefers_deepest_chip(self, context):
        scheduler = Sprinkler(context, use_rios=False, use_faro=True)
        shallow = build_tag([((0, 0), 0, 0)])
        deep = build_tag([((1, 1), 0, 0), ((1, 1), 1, 1), ((1, 1), 0, 1)])
        scheduler.register_tag(shallow, 0)
        scheduler.register_tag(deep, 0)
        picked = scheduler.next_composition(0)
        assert picked.chip_key == (1, 1)

    def test_spk_ignores_chip_conflicts(self, context):
        scheduler = Sprinkler(context, use_rios=True, use_faro=True)
        tag = build_tag([((0, 0), 0, 0)])
        scheduler.register_tag(tag, 0)
        request = scheduler.next_composition(0)
        request.composed_at_ns = 0
        tag.composed_count += 1
        context.controllers[0].commit(request, 0)
        # Over-commitment: a second request to the same chip is still composed.
        second = build_tag([((0, 0), 1, 1)])
        scheduler.register_tag(second, 0)
        assert scheduler.next_composition(0) is not None

    def test_fua_forces_fifo(self, context):
        scheduler = Sprinkler(context, use_rios=True, use_faro=True)
        first = build_tag([((1, 1), 0, 0)], fua=True)
        second = build_tag([((0, 0), 0, 0)])
        scheduler.register_tag(first, 0)
        scheduler.register_tag(second, 0)
        picked = scheduler.next_composition(0)
        assert picked.io_id == first.io_id

    def test_every_request_composed_exactly_once(self, context):
        scheduler = Sprinkler(context, use_rios=True, use_faro=True)
        tags = [
            build_tag([((0, 0), 0, 0), ((1, 0), 0, 0)]),
            build_tag([((0, 1), 0, 0), ((1, 1), 1, 1)]),
        ]
        for tag in tags:
            scheduler.register_tag(tag, 0)
        picked = drain(scheduler, limit=32)
        expected = sum(len(tag.memory_requests) for tag in tags)
        assert len(picked) == expected
        assert len({req.request_id for req in picked}) == expected

    def test_migration_moves_chip_bucket(self, context, small_geometry):
        scheduler = Sprinkler(context, use_rios=True, use_faro=True)
        tag = build_tag([((0, 0), 0, 0)])
        scheduler.register_tag(tag, 0)
        request = tag.memory_requests[0]
        old = request.address
        new = PhysicalPageAddress(1, 1, 0, 0, 0, 0)
        request.retarget(new)
        scheduler.on_migration(request.lpn, old, new)
        assert request in tag.by_chip[(1, 1)]
        picked = scheduler.next_composition(0)
        assert picked.chip_key == (1, 1)


class TestFactory:
    @pytest.mark.parametrize("name", SCHEDULER_NAMES)
    def test_make_all_schedulers(self, context, name):
        scheduler = make_scheduler(name, context)
        assert scheduler.name == name

    def test_lowercase_accepted(self, context):
        assert make_scheduler("spk3", context).name == "SPK3"

    def test_unknown_rejected(self, context):
        with pytest.raises(ValueError):
            make_scheduler("FIFO", context)

    def test_vas_rejects_options(self, context):
        with pytest.raises(TypeError):
            make_scheduler("VAS", context, overcommit_limit=4)

    def test_sprinkler_accepts_options(self, context):
        scheduler = make_scheduler("SPK3", context, overcommit_limit=4)
        assert scheduler.overcommit_limit == 4
