"""Tests for the declarative experiment specs and the execution engine."""

import pickle

import pytest

from repro.experiments.engine import (
    ExecutionEngine,
    ResultCache,
    engine_from_cli,
)
from repro.experiments.runner import (
    ExperimentScale,
    clone_workload,
    default_workload_specs,
    paper_config,
    run_scheduler_matrix,
)
from repro.experiments.spec import ExperimentSpec, SimJob, WorkloadSpec
from repro.sim.config import SimulationConfig
from repro.workloads.request import IOKind, IORequest
from repro.workloads.synthetic import generate_random_workload

TINY = ExperimentScale(
    requests_per_trace=24,
    requests_per_point=6,
    num_chips=16,
    traces=("cfs0", "msnfs1"),
    seed=3,
)


def tiny_spec(**config_overrides) -> ExperimentSpec:
    config = paper_config(TINY, **config_overrides) if config_overrides else paper_config(TINY)
    return ExperimentSpec.matrix(
        "tiny",
        default_workload_specs(TINY).values(),
        ("VAS", "SPK3"),
        config,
    )


class TestWorkloadSpec:
    def test_build_is_deterministic(self):
        spec = WorkloadSpec.datacenter("cfs0", num_requests=16, seed=5)
        first = spec.build()
        second = spec.build()
        assert [io.offset_bytes for io in first] == [io.offset_bytes for io in second]
        assert [io.io_id for io in first] == [io.io_id for io in second]
        assert [io.io_id for io in first] == list(range(16))

    def test_inline_round_trip(self):
        original = generate_random_workload(num_requests=5, size_bytes=4096, seed=9)
        spec = WorkloadSpec.inline("inline-demo", original)
        rebuilt = spec.build()
        assert [(io.kind, io.offset_bytes, io.size_bytes, io.arrival_ns) for io in rebuilt] == [
            (io.kind, io.offset_bytes, io.size_bytes, io.arrival_ns) for io in original
        ]

    def test_unknown_generator_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec("nope", "x").build()

    def test_build_leaves_global_id_counter_alone(self):
        before = IORequest(kind=IOKind.READ, offset_bytes=0, size_bytes=4096, arrival_ns=0)
        WorkloadSpec.datacenter("cfs0", num_requests=16, seed=5).build()
        after = IORequest(kind=IOKind.READ, offset_bytes=0, size_bytes=4096, arrival_ns=0)
        # Building a spec must not rewind the process-global io_id counter.
        assert after.io_id > before.io_id

    def test_fingerprint_tracks_params(self):
        a = WorkloadSpec.datacenter("cfs0", num_requests=16, seed=5)
        b = WorkloadSpec.datacenter("cfs0", num_requests=16, seed=5)
        c = WorkloadSpec.datacenter("cfs0", num_requests=16, seed=6)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()


class TestFingerprints:
    def test_config_fingerprint_stable_and_sensitive(self):
        config = SimulationConfig.paper_scale(16)
        assert config.fingerprint() == SimulationConfig.paper_scale(16).fingerprint()
        assert config.fingerprint() != config.with_overrides(queue_depth=8).fingerprint()
        assert (
            config.fingerprint()
            != config.with_overrides(gc_free_block_watermark=3).fingerprint()
        )

    def test_job_fingerprint_sensitive_to_every_axis(self):
        workload = WorkloadSpec.datacenter("cfs0", num_requests=16, seed=5)
        config = SimulationConfig.paper_scale(16)
        base = SimJob(workload=workload, scheduler="SPK3", config=config)
        assert base.fingerprint() == SimJob(
            workload=workload, scheduler="SPK3", config=config
        ).fingerprint()
        variants = [
            SimJob(workload=workload, scheduler="VAS", config=config),
            SimJob(
                workload=workload,
                scheduler="SPK3",
                config=config.with_overrides(decision_window_ns=999),
            ),
            SimJob(
                workload=workload,
                scheduler="SPK3",
                config=config,
                scheduler_options=(("overcommit_limit", 4),),
            ),
            SimJob(
                workload=WorkloadSpec.datacenter("cfs0", num_requests=17, seed=5),
                scheduler="SPK3",
                config=config,
            ),
        ]
        fingerprints = {job.fingerprint() for job in variants} | {base.fingerprint()}
        assert len(fingerprints) == len(variants) + 1

    def test_option_order_does_not_enter_fingerprint(self):
        workload = WorkloadSpec.datacenter("cfs0", num_requests=16, seed=5)
        config = SimulationConfig.paper_scale(16)
        a = SimJob(
            workload=workload,
            scheduler="SPK3",
            config=config,
            scheduler_options=(("overcommit_limit", 4), ("channel_first_traversal", True)),
        )
        b = SimJob(
            workload=workload,
            scheduler="SPK3",
            config=config,
            scheduler_options=(("channel_first_traversal", True), ("overcommit_limit", 4)),
        )
        assert a.fingerprint() == b.fingerprint()

    def test_key_does_not_enter_fingerprint(self):
        workload = WorkloadSpec.datacenter("cfs0", num_requests=16, seed=5)
        config = SimulationConfig.paper_scale(16)
        a = SimJob(workload=workload, scheduler="SPK3", config=config, key=("a",))
        b = SimJob(workload=workload, scheduler="SPK3", config=config, key=("b",))
        assert a.fingerprint() == b.fingerprint()


class TestExperimentSpec:
    def test_matrix_keys(self):
        spec = tiny_spec()
        assert len(spec) == 4
        assert [job.key for job in spec.jobs] == [
            ("cfs0", "VAS"),
            ("cfs0", "SPK3"),
            ("msnfs1", "VAS"),
            ("msnfs1", "SPK3"),
        ]

    def test_duplicate_keys_rejected(self):
        workload = WorkloadSpec.datacenter("cfs0", num_requests=8, seed=1)
        config = SimulationConfig.paper_scale(16)
        job = SimJob(workload=workload, scheduler="VAS", config=config, key=("dup",))
        with pytest.raises(ValueError):
            ExperimentSpec("bad", (job, job))


class TestExecutionEngine:
    def test_serial_and_process_backends_are_bit_identical(self):
        spec = tiny_spec()
        serial = ExecutionEngine("serial").run(spec)
        parallel = ExecutionEngine("process", max_workers=2).run(spec)
        assert list(serial) == list(parallel)
        for key in serial:
            assert pickle.dumps(serial[key]) == pickle.dumps(parallel[key])

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            ExecutionEngine("threads")

    def test_nonpositive_workers_rejected(self):
        with pytest.raises(ValueError):
            ExecutionEngine("process", max_workers=0)

    def test_cache_dir_must_be_a_directory(self, tmp_path):
        not_a_dir = tmp_path / "file"
        not_a_dir.write_text("x")
        with pytest.raises(ValueError):
            ExecutionEngine("serial", cache_dir=not_a_dir)

    def test_cache_dir_under_a_file_raises_value_error(self, tmp_path):
        # Regression: mkdir(parents=True) below an existing plain file
        # raises NotADirectoryError on POSIX, which escaped the old
        # FileExistsError-only handler as a raw traceback.
        blocking_file = tmp_path / "file"
        blocking_file.write_text("x")
        with pytest.raises(ValueError):
            ExecutionEngine("serial", cache_dir=blocking_file / "nested" / "cache")

    def test_duplicate_jobs_in_one_batch_execute_once(self):
        spec = tiny_spec()
        job = spec.jobs[0]
        twin = SimJob(
            workload=job.workload,
            scheduler=job.scheduler,
            config=job.config,
            scheduler_options=job.scheduler_options,
            key=("twin",),
        )
        engine = ExecutionEngine("serial")
        results = engine.run_jobs([job, twin, job])
        assert engine.stats.jobs_submitted == 3
        assert engine.stats.jobs_executed == 1
        assert len(results) == 3
        assert pickle.dumps(results[0]) == pickle.dumps(results[1]) == pickle.dumps(results[2])
        # Duplicates are independent objects (like cache-hit duplicates),
        # so in-place post-processing of one cell cannot corrupt another.
        assert results[0] is not results[1] and results[0] is not results[2]
        results[0].latency.add(1)
        assert results[1].latency.count == results[2].latency.count == results[0].latency.count - 1

    def test_duplicate_jobs_store_one_cache_entry(self, tmp_path):
        spec = tiny_spec()
        job = spec.jobs[0]
        engine = ExecutionEngine("process", max_workers=2, cache_dir=tmp_path)
        engine.run_jobs([job, job])
        assert engine.stats.jobs_executed == 1
        assert engine.stats.cache_stores == 1
        assert len(engine.cache) == 1
        # A warm rerun of the duplicated batch is pure cache hits.
        rerun = ExecutionEngine("serial", cache_dir=tmp_path)
        rerun.run_jobs([job, job])
        assert rerun.stats.jobs_executed == 0
        assert rerun.stats.cache_hits == 2

    def test_cache_hit_skips_execution(self, tmp_path):
        spec = tiny_spec()
        first = ExecutionEngine("serial", cache_dir=tmp_path)
        warm = first.run(spec)
        assert first.stats.jobs_executed == len(spec)
        assert first.stats.cache_hits == 0

        second = ExecutionEngine("serial", cache_dir=tmp_path)
        cached = second.run(spec)
        assert second.stats.jobs_executed == 0
        assert second.stats.cache_hits == len(spec)
        for key in warm:
            assert pickle.dumps(warm[key]) == pickle.dumps(cached[key])

    def test_cache_key_changes_with_config_knob(self, tmp_path):
        engine = ExecutionEngine("serial", cache_dir=tmp_path)
        engine.run(tiny_spec())
        assert engine.stats.cache_hits == 0
        # A different decision window must not hit the warm cache entries.
        engine.run(tiny_spec(decision_window_ns=123))
        assert engine.stats.cache_hits == 0
        assert engine.stats.jobs_executed == 2 * len(tiny_spec())
        # Re-running the original spec still hits.
        engine.run(tiny_spec())
        assert engine.stats.cache_hits == len(tiny_spec())

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        spec = tiny_spec()
        engine = ExecutionEngine("serial", cache_dir=tmp_path)
        engine.run(spec)
        for path in tmp_path.glob("*.pkl"):
            path.write_bytes(b"not a pickle")
        rerun = ExecutionEngine("serial", cache_dir=tmp_path)
        results = rerun.run(spec)
        assert rerun.stats.cache_hits == 0
        assert rerun.stats.jobs_executed == len(spec)
        assert len(results) == len(spec)

    def test_result_cache_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_spec()
        result = spec.jobs[0].execute()
        cache.store("abc", result)
        assert len(cache) == 1
        assert pickle.dumps(cache.load("abc")) == pickle.dumps(result)
        assert cache.load("missing") is None

    def test_build_workloads_rejects_duplicate_names(self):
        specs = [
            WorkloadSpec.datacenter("cfs0", num_requests=8, seed=1),
            WorkloadSpec.datacenter("cfs0", num_requests=16, seed=2),
        ]
        with pytest.raises(ValueError):
            ExecutionEngine().build_workloads(specs)

    def test_build_workloads_matches_direct_build(self):
        specs = list(default_workload_specs(TINY).values())
        built = ExecutionEngine("process", max_workers=2).build_workloads(specs)
        for spec in specs:
            direct = spec.build()
            assert [io.offset_bytes for io in built[spec.name]] == [
                io.offset_bytes for io in direct
            ]


class TestCompatibilityWrappers:
    def test_run_scheduler_matrix_accepts_raw_lists(self):
        workloads = {"demo": generate_random_workload(num_requests=6, size_bytes=4096, seed=2)}
        results = run_scheduler_matrix(workloads, ("VAS", "SPK3"), SimulationConfig.paper_scale(16))
        assert set(results) == {("demo", "VAS"), ("demo", "SPK3")}
        assert all(result.completed_ios == 6 for result in results.values())

    def test_run_scheduler_matrix_accepts_specs(self):
        specs = default_workload_specs(TINY)
        results = run_scheduler_matrix(specs, ("SPK3",), paper_config(TINY))
        assert set(results) == {(name, "SPK3") for name in TINY.traces}

    def test_clone_workload_copies_every_field(self):
        io = IORequest(
            kind=generate_random_workload(num_requests=1, size_bytes=4096)[0].kind,
            offset_bytes=4096,
            size_bytes=8192,
            arrival_ns=77,
            force_unit_access=True,
        )
        io.enqueued_at_ns = 5
        io.completed_at_ns = 9
        (clone,) = clone_workload([io])
        assert clone is not io
        assert clone.io_id == io.io_id
        assert clone.force_unit_access is True
        assert clone.offset_bytes == io.offset_bytes
        # Lifecycle stamps must reset so runs cannot leak state.
        assert clone.enqueued_at_ns is None
        assert clone.completed_at_ns is None


class TestEngineCli:
    def test_defaults(self):
        engine = engine_from_cli("test", [])
        assert engine.backend == "serial"
        assert engine.cache is None

    def test_process_flags(self, tmp_path):
        engine = engine_from_cli(
            "test", ["--backend", "process", "--workers", "3", "--cache-dir", str(tmp_path)]
        )
        assert engine.backend == "process"
        assert engine.max_workers == 3
        assert engine.cache is not None
