"""End-to-end tests of the SSD simulator."""

import pytest

from repro.core.policies import SCHEDULER_NAMES
from repro.sim.config import SimulationConfig
from repro.sim.ssd import SSDSimulator, run_workload
from repro.workloads.request import IOKind, IORequest
from repro.workloads.synthetic import generate_random_workload

KB = 1024


def clone(workload):
    return [
        IORequest(
            kind=io.kind,
            offset_bytes=io.offset_bytes,
            size_bytes=io.size_bytes,
            arrival_ns=io.arrival_ns,
            force_unit_access=io.force_unit_access,
        )
        for io in workload
    ]


@pytest.fixture(scope="module")
def mixed_workload():
    return generate_random_workload(
        num_requests=40,
        size_bytes=16 * KB,
        address_space_bytes=16 * 1024 * KB,
        read_fraction=0.6,
        interarrival_ns=2_000,
        seed=11,
    )


class TestBasicCompletion:
    @pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
    def test_all_ios_complete(self, scheduler, test_config, mixed_workload):
        result = run_workload(clone(mixed_workload), scheduler=scheduler, config=test_config)
        assert result.completed_ios == len(mixed_workload)
        assert result.num_ios == len(mixed_workload)
        assert result.makespan_ns > 0

    @pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
    def test_request_conservation(self, scheduler, test_config, mixed_workload):
        result = run_workload(clone(mixed_workload), scheduler=scheduler, config=test_config)
        expected_pages = sum(
            io.num_pages(test_config.geometry.page_size_bytes) for io in mixed_workload
        )
        assert result.memory_requests_composed == expected_pages
        assert result.memory_requests_served == expected_pages
        assert result.total_bytes == sum(io.size_bytes for io in mixed_workload)

    def test_latency_positive_and_bounded(self, test_config, mixed_workload):
        result = run_workload(clone(mixed_workload), scheduler="SPK3", config=test_config)
        assert result.latency.count == len(mixed_workload)
        assert result.latency.min_ns > 0
        assert result.latency.max_ns <= result.makespan_ns + max(
            io.arrival_ns for io in mixed_workload
        )

    def test_deterministic_repeat(self, test_config, mixed_workload):
        first = run_workload(clone(mixed_workload), scheduler="SPK3", config=test_config)
        second = run_workload(clone(mixed_workload), scheduler="SPK3", config=test_config)
        assert first.makespan_ns == second.makespan_ns
        assert first.transactions == second.transactions
        assert first.avg_latency_ns == second.avg_latency_ns

    def test_empty_workload(self, test_config):
        result = run_workload([], scheduler="SPK3", config=test_config)
        assert result.completed_ios == 0
        assert result.makespan_ns == 0

    def test_single_small_read(self, test_config):
        io = IORequest(kind=IOKind.READ, offset_bytes=0, size_bytes=2048, arrival_ns=0)
        result = run_workload([io], scheduler="VAS", config=test_config)
        assert result.completed_ios == 1
        assert result.transactions == 1
        # Latency must cover at least the cell read plus the bus transfer.
        assert result.avg_latency_ns >= test_config.timing.read_ns


class TestSchedulerOrdering:
    def test_spk3_outperforms_vas(self, test_config, mixed_workload):
        vas = run_workload(clone(mixed_workload), scheduler="VAS", config=test_config)
        spk3 = run_workload(clone(mixed_workload), scheduler="SPK3", config=test_config)
        assert spk3.bandwidth_kb_s > vas.bandwidth_kb_s
        assert spk3.avg_latency_ns < vas.avg_latency_ns

    def test_spk3_coalesces_more_than_vas(self, test_config, mixed_workload):
        vas = run_workload(clone(mixed_workload), scheduler="VAS", config=test_config)
        spk3 = run_workload(clone(mixed_workload), scheduler="SPK3", config=test_config)
        assert spk3.transactions < vas.transactions
        assert spk3.coalescing_degree > vas.coalescing_degree

    def test_spk3_reduces_inter_chip_idleness(self, test_config, mixed_workload):
        vas = run_workload(clone(mixed_workload), scheduler="VAS", config=test_config)
        spk3 = run_workload(clone(mixed_workload), scheduler="SPK3", config=test_config)
        assert spk3.inter_chip_idleness <= vas.inter_chip_idleness

    def test_pas_not_worse_than_vas(self, test_config, mixed_workload):
        vas = run_workload(clone(mixed_workload), scheduler="VAS", config=test_config)
        pas = run_workload(clone(mixed_workload), scheduler="PAS", config=test_config)
        assert pas.bandwidth_kb_s >= vas.bandwidth_kb_s * 0.95


class TestQueuePressure:
    def test_small_queue_causes_stall_time(self, mixed_workload):
        config = SimulationConfig.small(gc_enabled=False, queue_depth=2)
        result = run_workload(clone(mixed_workload), scheduler="VAS", config=config)
        assert result.completed_ios == len(mixed_workload)
        assert result.queue_stall_time_ns > 0
        assert result.extra["stalled_requests"] > 0

    def test_deep_queue_avoids_stalls(self, mixed_workload):
        config = SimulationConfig.small(gc_enabled=False, queue_depth=256)
        result = run_workload(clone(mixed_workload), scheduler="VAS", config=config)
        assert result.queue_stall_time_ns == 0


class TestMetricsConsistency:
    def test_breakdown_fractions_sum_to_one(self, test_config, mixed_workload):
        result = run_workload(clone(mixed_workload), scheduler="SPK3", config=test_config)
        assert sum(result.breakdown_fractions().values()) == pytest.approx(1.0)

    def test_flp_fractions_sum_to_one(self, test_config, mixed_workload):
        result = run_workload(clone(mixed_workload), scheduler="SPK3", config=test_config)
        assert sum(result.flp_fractions().values()) == pytest.approx(1.0)

    def test_utilization_within_bounds(self, test_config, mixed_workload):
        result = run_workload(clone(mixed_workload), scheduler="SPK3", config=test_config)
        assert 0.0 < result.chip_utilization <= 1.0
        assert 0.0 <= result.inter_chip_idleness < 1.0
        assert 0.0 <= result.intra_chip_idleness <= 1.0

    def test_time_series_matches_completions(self, test_config, mixed_workload):
        result = run_workload(clone(mixed_workload), scheduler="PAS", config=test_config)
        assert len(result.time_series) == result.completed_ios
        assert all(point.latency_ns > 0 for point in result.time_series)

    def test_summary_row_keys(self, test_config, mixed_workload):
        result = run_workload(clone(mixed_workload), scheduler="SPK2", config=test_config)
        row = result.summary_row()
        assert row["scheduler"] == "SPK2"
        assert row["bandwidth_kb_s"] > 0


class TestWriteAndGcPath:
    def test_write_only_workload_completes(self, test_config):
        workload = generate_random_workload(
            num_requests=24,
            size_bytes=8 * KB,
            address_space_bytes=4 * 1024 * KB,
            read_fraction=0.0,
            seed=3,
        )
        result = run_workload(clone(workload), scheduler="SPK3", config=test_config)
        assert result.completed_ios == 24

    def test_gc_triggers_on_fragmented_drive(self):
        config = SimulationConfig.small(
            gc_enabled=True,
            prefill_fraction=0.92,
            prefill_overwrite_fraction=0.4,
            gc_free_block_watermark=2,
        )
        workload = generate_random_workload(
            num_requests=24,
            size_bytes=8 * KB,
            address_space_bytes=2 * 1024 * KB,
            read_fraction=0.0,
            seed=5,
        )
        result = run_workload(clone(workload), scheduler="SPK3", config=config)
        assert result.completed_ios == 24
        assert result.extra["gc_invocations"] > 0
        assert result.gc_time_ns > 0

    def test_gc_slows_down_writes(self):
        workload = generate_random_workload(
            num_requests=24,
            size_bytes=8 * KB,
            address_space_bytes=2 * 1024 * KB,
            read_fraction=0.0,
            seed=5,
        )
        pristine = run_workload(
            clone(workload),
            scheduler="SPK3",
            config=SimulationConfig.small(gc_enabled=False),
        )
        fragmented = run_workload(
            clone(workload),
            scheduler="SPK3",
            config=SimulationConfig.small(
                gc_enabled=True, prefill_fraction=0.92, prefill_overwrite_fraction=0.4
            ),
        )
        assert fragmented.bandwidth_kb_s < pristine.bandwidth_kb_s

    def test_readdressing_callback_disabled_for_vas(self, test_config):
        simulator = SSDSimulator(test_config, "VAS")
        assert not simulator.callback.enabled

    def test_readdressing_callback_enabled_for_sprinkler(self, test_config):
        simulator = SSDSimulator(test_config, "SPK3")
        assert simulator.callback.enabled

    def test_callback_override(self, test_config):
        config = test_config.with_overrides(readdressing_callback=True)
        simulator = SSDSimulator(config, "VAS")
        assert simulator.callback.enabled


class TestForceUnitAccess:
    def test_fua_workload_completes_in_order(self, test_config):
        ios = [
            IORequest(
                kind=IOKind.WRITE,
                offset_bytes=i * 64 * KB,
                size_bytes=16 * KB,
                arrival_ns=i * 100,
                force_unit_access=(i == 1),
            )
            for i in range(4)
        ]
        result = run_workload(clone(ios), scheduler="SPK3", config=test_config)
        assert result.completed_ios == 4
