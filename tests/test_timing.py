"""Tests for the NAND timing model."""

import pytest

from repro.flash.commands import FlashOp
from repro.flash.timing import FlashTiming


class TestCellLatencies:
    def test_read_latency_default(self):
        assert FlashTiming().read_latency_ns() == 20_000

    def test_even_pages_are_fast(self):
        timing = FlashTiming()
        for page in (0, 2, 4, 100):
            assert timing.program_latency_ns(page) == timing.program_fast_ns

    def test_odd_pages_are_slower(self):
        timing = FlashTiming()
        for page in (1, 3, 77, 127):
            latency = timing.program_latency_ns(page)
            assert timing.program_fast_ns < latency <= timing.program_slow_ns

    def test_program_latency_deterministic(self):
        timing = FlashTiming()
        assert timing.program_latency_ns(11) == timing.program_latency_ns(11)

    def test_program_latency_negative_page(self):
        with pytest.raises(ValueError):
            FlashTiming().program_latency_ns(-1)

    def test_erase_latency(self):
        assert FlashTiming(erase_ns=2_000_000).erase_latency_ns() == 2_000_000

    def test_cell_latency_dispatch(self):
        timing = FlashTiming()
        assert timing.cell_latency_ns(FlashOp.READ) == timing.read_latency_ns()
        assert timing.cell_latency_ns(FlashOp.PROGRAM, 0) == timing.program_fast_ns
        assert timing.cell_latency_ns(FlashOp.ERASE) == timing.erase_latency_ns()

    def test_cell_latency_rejects_bad_op(self):
        with pytest.raises(ValueError):
            FlashTiming().cell_latency_ns("not-an-op")


class TestBusLatencies:
    def test_transfer_scales_with_size(self):
        timing = FlashTiming()
        assert timing.transfer_latency_ns(4096) > timing.transfer_latency_ns(2048)

    def test_transfer_zero_bytes(self):
        assert FlashTiming().transfer_latency_ns(0) == 0

    def test_transfer_negative_bytes(self):
        with pytest.raises(ValueError):
            FlashTiming().transfer_latency_ns(-1)

    def test_transfer_minimum_one_ns(self):
        assert FlashTiming().transfer_latency_ns(1) >= 1

    def test_transfer_matches_bus_rate(self):
        timing = FlashTiming(bus_bytes_per_sec=200_000_000)
        # 2000 bytes at 200 MB/s = 10 microseconds.
        assert timing.transfer_latency_ns(2000) == 10_000

    def test_request_bus_time_adds_command_overhead(self):
        timing = FlashTiming(command_overhead_ns=500)
        assert timing.request_bus_time_ns(2048) == 500 + timing.transfer_latency_ns(2048)


class TestValidation:
    def test_rejects_non_positive_latency(self):
        with pytest.raises(ValueError):
            FlashTiming(read_ns=0)

    def test_rejects_slow_faster_than_fast(self):
        with pytest.raises(ValueError):
            FlashTiming(program_fast_ns=1000, program_slow_ns=500)

    def test_rejects_non_positive_bus_rate(self):
        with pytest.raises(ValueError):
            FlashTiming(bus_bytes_per_sec=0)

    def test_rejects_bad_fast_page_fraction(self):
        with pytest.raises(ValueError):
            FlashTiming(mlc_fast_page_fraction=1.5)

    def test_scaled_override(self):
        timing = FlashTiming().scaled(read_ns=33_000)
        assert timing.read_ns == 33_000
        assert timing.program_fast_ns == FlashTiming().program_fast_ns
