"""Fleet layer: placement, admission, valleys, exact merge math, bit-identity."""

import dataclasses

import pytest

from repro.array.host import merge_device_results
from repro.array.layout import ArrayLayout, split_trace
from repro.experiments.engine import ExecutionEngine
from repro.experiments.fleet_sweep import build_fleet_spec, run_fleet_sweep
from repro.experiments.spec import ArraySpec, WorkloadSpec
from repro.fleet import (
    BackgroundJob,
    FleetNodeSpec,
    FleetSpec,
    TenantPolicy,
    admit_stream,
    build_fleet_workloads,
    find_load_valleys,
    plan_placement,
    reconcile_fleet,
    run_fleet,
    schedule_background,
    stable_tenant_hash,
    tenant_demands,
)
from repro.fleet.report import (
    fleet_report_html,
    fleet_report_markdown,
    write_fleet_report,
)
from repro.fleet.result import FleetResult, merge_node_results
from repro.metrics.attribution import (
    AttributionReport,
    TenantPhaseStats,
    merge_attribution_reports,
    reconcile_attribution,
)
from repro.metrics.latency import LatencyStats
from repro.obs.report import SLOThresholds
from repro.scenarios.library import bursty_multitenant_scenario, fleet_scenario
from repro.workloads.build import freeze_requests, strip_request_tags, thaw_requests
from repro.workloads.request import IOKind, IORequest

KB = 1024
MB = 1024 * KB


def _req(offset, size=4 * KB, arrival=0, kind=IOKind.READ, tenant=None, phase=None):
    return IORequest(
        kind=kind,
        offset_bytes=offset,
        size_bytes=size,
        arrival_ns=arrival,
        tenant=tenant,
        phase_index=phase,
    )


def _slice(tenant, phase, ios, read_bytes, samples):
    latency = LatencyStats()
    for sample in samples:
        latency.add(sample)
    return TenantPhaseStats(
        tenant=tenant,
        phase_index=phase,
        completed_ios=ios,
        reads=ios,
        writes=0,
        read_bytes=read_bytes,
        write_bytes=0,
        latency=latency,
        latency_windows=(),
    )


def _tiny_fleet_spec(placement="round-robin", **overrides):
    fields = dict(
        name="tiny",
        scenario=fleet_scenario(requests_per_tenant=12, seed=7),
        nodes=(
            FleetNodeSpec(name="n0", devices=("slc-gen1",)),
            FleetNodeSpec(name="n1", devices=("mlc-gen1",)),
            FleetNodeSpec(name="n2", devices=("slc-gen1",), scheduler="SPK2"),
        ),
        placement=placement,
        tenant_policies=(
            ("kv", TenantPolicy(max_iops=250_000.0)),
            ("logger", TenantPolicy(max_queue_depth=4)),
        ),
        default_slo=SLOThresholds(p99_us=250_000.0),
        background=(
            BackgroundJob(kind="scrub", node="n0", num_requests=6),
            BackgroundJob(kind="gc-debt", node="n1", num_requests=6, deadline_ns=400_000),
        ),
    )
    fields.update(overrides)
    return FleetSpec(**fields)


class TestTagPlumbing:
    def test_freeze_thaw_keeps_tags(self):
        reqs = [_req(0, tenant="a", phase=0), _req(8 * KB, tenant=None, phase=None)]
        frozen = freeze_requests(reqs, keep_tags=True)
        assert len(frozen[0]) == 7
        thawed = thaw_requests(frozen)
        assert thawed[0].tenant == "a" and thawed[0].phase_index == 0
        assert thawed[1].tenant is None

    def test_strip_request_tags_identity_on_untagged(self):
        reqs = [_req(0), _req(8 * KB)]
        frozen = freeze_requests(reqs)
        assert strip_request_tags(frozen) == frozen

    def test_tagged_inline_fingerprint_matches_untagged(self):
        trace = bursty_multitenant_scenario(requests_per_tenant=8, seed=3).build()
        tagged = WorkloadSpec.inline("w", trace, keep_tags=True)
        untagged = WorkloadSpec.inline("w", trace)
        assert tagged.fingerprint() == untagged.fingerprint()
        rebuilt = tagged.build()
        assert [io.tenant for io in rebuilt] == [io.tenant for io in trace]

    def test_split_trace_preserves_tags(self):
        trace = [
            _req(index * 64 * KB, size=64 * KB, arrival=index, tenant=f"t{index % 2}", phase=0)
            for index in range(8)
        ]
        for sub_trace in split_trace(trace, ArrayLayout(num_devices=2)):
            for io in sub_trace:
                assert io.tenant in ("t0", "t1")
                assert io.phase_index == 0

    def test_array_attribution_reconciles(self):
        scenario = bursty_multitenant_scenario(requests_per_tenant=8, seed=3)
        spec = ArraySpec(
            workload=WorkloadSpec.scenario(scenario),
            num_devices=2,
            scheduler="SPK2",
            devices=("slc-gen1", "mlc-gen1"),
        )
        results = ExecutionEngine().run_jobs(list(spec.device_jobs()))
        merged = merge_device_results(
            results, scheduler="SPK2", workload=scenario.name, policy="stripe"
        )
        assert merged.attribution is not None
        assert merged.attribution.tenants() == ("reader", "writer")
        assert reconcile_attribution(merged) == []


class TestMergeAttribution:
    def test_counts_bytes_and_samples_sum_exactly(self):
        left = AttributionReport(
            entries=(_slice("a", 0, 2, 8 * KB, [100, 200]),), untagged_ios=1, untagged_bytes=4 * KB
        )
        right = AttributionReport(
            entries=(
                _slice("a", 0, 3, 12 * KB, [300, 400, 500]),
                _slice("b", 1, 1, 4 * KB, [900]),
            ),
        )
        merged = merge_attribution_reports([left, right])
        assert [(e.tenant, e.phase_index) for e in merged.entries] == [("a", 0), ("b", 1)]
        a = merged.entries[0]
        assert a.completed_ios == 5
        assert a.read_bytes == 20 * KB
        assert sorted(a.latency.samples_ns) == [100, 200, 300, 400, 500]
        assert merged.untagged_ios == 1
        assert merged.untagged_bytes == 4 * KB

    def test_empty_input_is_none(self):
        assert merge_attribution_reports([]) is None

    def test_entries_sorted_by_phase_then_tenant(self):
        merged = merge_attribution_reports(
            [
                AttributionReport(entries=(_slice("z", 0, 1, KB, [1]),)),
                AttributionReport(entries=(_slice("a", 1, 1, KB, [2]),)),
                AttributionReport(entries=(_slice("a", 0, 1, KB, [3]),)),
            ]
        )
        assert [(e.tenant, e.phase_index) for e in merged.entries] == [
            ("a", 0),
            ("z", 0),
            ("a", 1),
        ]


class TestPlacement:
    def _demands(self, spec):
        return tenant_demands(spec.tenants(), spec.scenario.build())

    def test_round_robin_in_declaration_order(self):
        spec = _tiny_fleet_spec()
        plan = plan_placement(spec, self._demands(spec))
        # fleet_scenario declares web, kv, analytics, logger.
        assert plan.assignments == (("web", 0), ("kv", 1), ("analytics", 2), ("logger", 0))

    def test_least_loaded_spreads_biggest_first(self):
        spec = _tiny_fleet_spec(placement="least-loaded", background=())
        demands = self._demands(spec)
        plan = plan_placement(spec, demands)
        by_tenant = {d.tenant: d.bytes for d in demands}
        loads = [0, 0, 0]
        for demand in sorted(demands, key=lambda d: (-d.bytes, d.tenant)):
            node = plan.node_of(demand.tenant)
            # Greedy invariant: the chosen node had the minimum load.
            assert loads[node] == min(loads)
            loads[node] += by_tenant[demand.tenant]

    def test_hash_is_stable(self):
        spec = _tiny_fleet_spec(placement="hash")
        plan = plan_placement(spec, self._demands(spec))
        for tenant, node in plan.assignments:
            assert node == stable_tenant_hash(tenant) % 3
        assert plan == plan_placement(spec, self._demands(spec))

    def test_affinity_pins_and_falls_back_to_hash(self):
        spec = _tiny_fleet_spec(
            placement="tenant-affinity",
            tenant_policies=(("analytics", TenantPolicy(affinity="n2")),),
        )
        plan = plan_placement(spec, self._demands(spec))
        assert plan.node_of("analytics") == 2
        assert plan.node_of("web") == stable_tenant_hash("web") % 3

    def test_unknown_affinity_node_rejected(self):
        with pytest.raises(ValueError, match="pins unknown node"):
            _tiny_fleet_spec(
                tenant_policies=(("web", TenantPolicy(affinity="nope")),)
            )

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError, match="unknown placement"):
            _tiny_fleet_spec(placement="chaos")

    def test_background_must_target_known_node(self):
        with pytest.raises(ValueError, match="unknown node"):
            _tiny_fleet_spec(background=(BackgroundJob(kind="scrub", node="nope"),))


class TestAdmission:
    def test_no_policy_passes_through(self):
        stream = [_req(0, arrival=10, tenant="a"), _req(KB, arrival=20, tenant="a")]
        admitted, throttled, rejected = admit_stream(stream, None, nominal_service_ns=100)
        assert [io.arrival_ns for io in admitted] == [10, 20]
        assert [io.tenant for io in admitted] == ["a", "a"]
        assert throttled == 0 and rejected == 0

    def test_rate_pacing_enforces_min_gap(self):
        stream = [_req(i * KB, arrival=i * 100) for i in range(5)]
        policy = TenantPolicy(max_iops=1_000_000.0)  # 1000 ns min gap
        admitted, throttled, rejected = admit_stream(stream, policy, nominal_service_ns=100)
        arrivals = [io.arrival_ns for io in admitted]
        assert arrivals == [0, 1000, 2000, 3000, 4000]
        assert throttled == 4 and rejected == 0

    def test_queue_depth_rejects_overflow(self):
        stream = [_req(i * KB, arrival=0) for i in range(6)]
        policy = TenantPolicy(max_queue_depth=4)
        admitted, throttled, rejected = admit_stream(
            stream, policy, nominal_service_ns=1_000
        )
        assert len(admitted) == 4 and rejected == 2 and throttled == 0

    def test_depth_frees_slots_after_service(self):
        stream = [_req(i * KB, arrival=i * 2_000) for i in range(6)]
        policy = TenantPolicy(max_queue_depth=1)
        admitted, _, rejected = admit_stream(stream, policy, nominal_service_ns=1_000)
        assert len(admitted) == 6 and rejected == 0

    def test_deterministic(self):
        stream = [_req(i * KB, arrival=i * 50, tenant="a", phase=0) for i in range(20)]
        policy = TenantPolicy(max_iops=2_000_000.0, max_queue_depth=3)
        first = admit_stream(stream, policy, nominal_service_ns=500)
        second = admit_stream(stream, policy, nominal_service_ns=500)
        assert [io.arrival_ns for io in first[0]] == [io.arrival_ns for io in second[0]]
        assert first[1:] == second[1:]


class TestBackground:
    def test_valleys_ranked_emptiest_first(self):
        # Dense cluster early, nothing late: the last window must rank first.
        arrivals = [i for i in range(50)] + [1000]
        valleys = find_load_valleys(arrivals, num_windows=4)
        assert valleys[0].arrivals == 0
        assert valleys[0].start_ns > valleys[-1].start_ns or valleys[-1].arrivals > 0

    def test_requests_land_in_emptiest_window(self):
        foreground = [_req(i * KB, arrival=i * 10) for i in range(64)] + [
            _req(0, arrival=10_000)
        ]
        job = BackgroundJob(kind="scrub", node="n0", num_requests=4)
        streams, stats = schedule_background(foreground, [job], num_windows=8)
        (stat,) = stats
        for io in streams[0]:
            assert stat.start_ns <= io.arrival_ns < stat.end_ns + 1
            assert io.tenant == "bg:scrub"
            assert io.kind == IOKind.READ

    def test_edd_orders_jobs_and_deadline_flag(self):
        foreground = [_req(i * KB, arrival=i * 100) for i in range(64)]
        late = BackgroundJob(kind="scrub", node="n0", num_requests=4)
        urgent = BackgroundJob(
            kind="rebuild", node="n0", num_requests=4, deadline_ns=2_000
        )
        streams, stats = schedule_background(foreground, [late, urgent], num_windows=8)
        # Streams stay in declaration order; stats too.
        assert stats[0].kind == "scrub" and stats[1].kind == "rebuild"
        assert stats[1].start_ns < stats[1].deadline_ns
        hopeless = BackgroundJob(kind="rebuild", node="n0", num_requests=4, deadline_ns=1)
        _, (stat,) = schedule_background(foreground, [hopeless], num_windows=8)
        assert stat.met_deadline is False

    def test_gc_debt_writes_inside_span(self):
        job = BackgroundJob(
            kind="gc-debt", node="n0", num_requests=16, size_bytes=8 * KB,
            address_span_bytes=1 * MB,
        )
        streams, _ = schedule_background([], [job], num_windows=4)
        for io in streams[0]:
            assert io.kind == IOKind.WRITE
            assert 0 <= io.offset_bytes <= 1 * MB - 8 * KB
            assert io.offset_bytes % (8 * KB) == 0

    def test_empty_foreground_still_schedules(self):
        job = BackgroundJob(kind="scrub", node="n0", num_requests=3)
        streams, stats = schedule_background([], [job], num_windows=4)
        assert len(streams[0]) == 3 and stats[0].met_deadline


class TestFleetBalanceMetrics:
    @dataclasses.dataclass
    class _FakeDevice:
        total_bytes: int
        bandwidth_kb_s: float
        iops: float
        completed_ios: int = 0
        makespan_ns: int = 0
        attribution: object = None

    def _node(self, total_bytes, iops):
        from repro.array.host import ArrayResult

        return ArrayResult(
            scheduler="SPK3",
            workload="w",
            policy="stripe",
            num_devices=1,
            device_results=(self._FakeDevice(total_bytes, 0.0, iops),),
        )

    def _fleet(self, nodes):
        from repro.fleet.placement import PlacementPlan

        return FleetResult(
            name="f",
            placement="round-robin",
            node_names=tuple(f"n{i}" for i in range(len(nodes))),
            node_results=tuple(nodes),
            plan=PlacementPlan(policy="round-robin", assignments=()),
        )

    def test_byte_imbalance_max_to_mean(self):
        fleet = self._fleet([self._node(100, 10.0), self._node(300, 10.0)])
        assert fleet.byte_imbalance() == pytest.approx(300 / 200)

    def test_iops_imbalance(self):
        fleet = self._fleet([self._node(100, 5.0), self._node(100, 15.0)])
        assert fleet.iops_imbalance() == pytest.approx(1.5)

    def test_idle_fleet_sentinel(self):
        fleet = self._fleet([self._node(0, 0.0), self._node(0, 0.0)])
        assert fleet.byte_imbalance() == 0.0
        assert fleet.iops_imbalance() == 0.0
        assert fleet.makespan_ns == 0


class TestFleetRun:
    @pytest.mark.parametrize("placement", ["round-robin", "least-loaded"])
    def test_reconciles_exactly_per_placement(self, placement):
        fleet = run_fleet(_tiny_fleet_spec(placement=placement))
        assert reconcile_fleet(fleet) == []
        assert fleet.attribution is not None
        # Per-tenant SLO accounting == summed per-array attribution slices,
        # exactly (counts, bytes and the pooled sample population).
        for tenant in fleet.attribution.tenants():
            merged = fleet.attribution.by_tenant(tenant)
            node_slices = [
                node.attribution.by_tenant(tenant)
                for node in fleet.node_results
                if node.attribution is not None
                and tenant in node.attribution.tenants()
            ]
            assert merged.completed_ios == sum(s.completed_ios for s in node_slices)
            assert merged.total_bytes == sum(s.total_bytes for s in node_slices)
            pooled = sorted(
                sample for s in node_slices for sample in s.latency.samples_ns
            )
            assert pooled == sorted(merged.latency.samples_ns)

    def test_slo_checks_cover_tenants_not_background(self):
        fleet = run_fleet(_tiny_fleet_spec())
        checked = {check.tenant for check in fleet.slo_checks}
        assert checked == {"web", "kv", "analytics", "logger"}
        assert fleet.attribution is not None
        assert any(t.startswith("bg:") for t in fleet.attribution.tenants())

    def test_serial_process_bit_identical(self):
        spec = _tiny_fleet_spec()
        serial = run_fleet(spec)
        parallel = run_fleet(spec, ExecutionEngine(backend="process", max_workers=2))
        assert serial == parallel

    def test_result_cache_round_trip(self, tmp_path):
        spec = _tiny_fleet_spec(background=())
        engine = ExecutionEngine(cache_dir=tmp_path)
        first = run_fleet(spec, engine)
        second = run_fleet(spec, ExecutionEngine(cache_dir=tmp_path))
        assert first == second

    def test_fingerprint_sensitivity(self):
        base = _tiny_fleet_spec()
        assert base.fingerprint() == _tiny_fleet_spec().fingerprint()
        assert base.fingerprint() != _tiny_fleet_spec(placement="hash").fingerprint()
        assert (
            base.fingerprint()
            != _tiny_fleet_spec(default_slo=SLOThresholds(p99_us=1.0)).fingerprint()
        )

    def test_admission_stats_reconcile_with_workloads(self):
        spec = _tiny_fleet_spec()
        workloads = build_fleet_workloads(spec)
        for stats in workloads.admission:
            assert stats.offered == stats.admitted + stats.rejected
        # Foreground admitted + background == what the nodes actually serve.
        admitted = sum(stats.admitted for stats in workloads.admission)
        background = sum(stats.requests for stats in workloads.background)
        assert admitted + background == sum(len(t) for t in workloads.node_traces)


class TestFleetReport:
    def test_markdown_sections(self):
        fleet = run_fleet(_tiny_fleet_spec())
        md = fleet_report_markdown(fleet)
        for section in ("## Placement", "## Nodes", "## Tenants", "## SLO checks",
                        "## Admission", "## Background work", "## Reconciliation"):
            assert section in md
        assert "match the summed per-array attribution exactly" in md

    def test_html_is_selfcontained(self):
        fleet = run_fleet(_tiny_fleet_spec())
        page = fleet_report_html(fleet)
        assert page.startswith("<!DOCTYPE html>")
        assert "Reconciliation" in page and 'class="pass"' in page

    def test_write_dispatches_on_suffix(self, tmp_path):
        fleet = run_fleet(_tiny_fleet_spec(background=(), tenant_policies=()))
        md_path = write_fleet_report(tmp_path / "fleet.md", fleet)
        html_path = write_fleet_report(tmp_path / "fleet.html", fleet)
        assert md_path.read_text().startswith("# Fleet report")
        assert html_path.read_text().startswith("<!DOCTYPE html>")
        with pytest.raises(ValueError, match="unknown report format"):
            write_fleet_report(tmp_path / "fleet.md", fleet, fmt="pdf")


class TestFleetSweep:
    def test_tiny_sweep_rows_complete(self):
        rows, results = run_fleet_sweep(
            fleet_sizes=(2,),
            placements=("round-robin", "hash"),
            requests_per_tenant=8,
            zoo_cycle=("slc-gen1", "mlc-gen1"),
        )
        assert len(rows) == 2
        for row in rows:
            assert row["nodes"] == 2
            assert row["bandwidth_mb_s"] > 0
        for fleet in results.values():
            assert reconcile_fleet(fleet) == []

    def test_build_fleet_spec_heterogeneous(self):
        spec = build_fleet_spec(fleet_scenario(requests_per_tenant=8), 3, "least-loaded")
        assert len({node.devices for node in spec.nodes}) == 3
        assert spec.background
