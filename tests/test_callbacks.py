"""Tests for the readdressing callback."""


from repro.flash.commands import FlashOp
from repro.flash.geometry import PhysicalPageAddress
from repro.flash.request import MemoryRequest
from repro.ftl.callbacks import ReaddressingCallback


def address(channel=0, chip=0, die=0, plane=0, block=0, page=0):
    return PhysicalPageAddress(channel, chip, die, plane, block, page)


def request_at(addr, io_id=1):
    return MemoryRequest(io_id=io_id, op=FlashOp.READ, lpn=0, size_bytes=2048, address=addr)


class TestEnabledCallback:
    def test_retargets_tracked_request(self):
        callback = ReaddressingCallback(enabled=True)
        old, new = address(block=0), address(block=3)
        req = request_at(old)
        callback.track_request(req)
        callback.on_migration(7, old, new)
        assert req.address == new
        assert req.penalty_ns == 0
        assert callback.stats.requests_retargeted == 1

    def test_untracked_request_not_touched(self):
        callback = ReaddressingCallback(enabled=True)
        old, new = address(block=0), address(block=3)
        req = request_at(old)
        callback.track_request(req)
        callback.untrack_request(req)
        callback.on_migration(7, old, new)
        assert req.address == old

    def test_migration_of_unrelated_address(self):
        callback = ReaddressingCallback(enabled=True)
        req = request_at(address(block=5))
        callback.track_request(req)
        callback.on_migration(7, address(block=0), address(block=3))
        assert req.address == address(block=5)

    def test_cross_resource_counter(self):
        callback = ReaddressingCallback(enabled=True)
        callback.on_migration(1, address(plane=0), address(plane=1))
        callback.on_migration(2, address(block=0, page=1), address(block=2, page=1))
        assert callback.stats.migrations_observed == 2
        assert callback.stats.cross_resource_migrations == 1

    def test_extra_listener_invoked(self):
        callback = ReaddressingCallback(enabled=True)
        seen = []
        callback.add_listener(lambda lpn, old, new: seen.append(lpn))
        callback.on_migration(9, address(), address(block=1))
        assert seen == [9]

    def test_track_ignores_untranslated(self):
        callback = ReaddressingCallback(enabled=True)
        req = MemoryRequest(io_id=1, op=FlashOp.READ, lpn=0, size_bytes=2048)
        callback.track_request(req)
        assert callback.tracked_requests() == 0

    def test_tracked_count_and_clear(self):
        callback = ReaddressingCallback(enabled=True)
        callback.track_request(request_at(address()))
        assert callback.tracked_requests() == 1
        callback.clear()
        assert callback.tracked_requests() == 0


class TestDisabledCallback:
    def test_penalty_applied_instead_of_clean_retarget(self):
        callback = ReaddressingCallback(enabled=False, stale_penalty_ns=30_000)
        old, new = address(block=0), address(block=4)
        req = request_at(old)
        callback.track_request(req)
        callback.on_migration(3, old, new)
        # The request still has to find the data (it is retargeted), but it
        # pays the stale re-translation penalty.
        assert req.address == new
        assert req.penalty_ns == 30_000
        assert callback.stats.requests_penalized == 1
        assert callback.stats.requests_retargeted == 0

    def test_multiple_migrations_accumulate_penalty(self):
        callback = ReaddressingCallback(enabled=False, stale_penalty_ns=10_000)
        a, b, c = address(block=0), address(block=1), address(block=2)
        req = request_at(a)
        callback.track_request(req)
        callback.on_migration(3, a, b)
        callback.on_migration(3, b, c)
        assert req.penalty_ns == 20_000
