"""Tests for the metrics subpackage."""

import pytest

from repro.flash.commands import ParallelismClass
from repro.metrics.breakdown import ExecutionBreakdown
from repro.metrics.latency import (
    LatencyStats,
    bandwidth_kb_per_sec,
    iops,
    merge_latency_stats,
    percentile,
)
from repro.metrics.parallelism import FLPBreakdown
from repro.metrics.report import format_table
from repro.metrics.utilization import (
    IdlenessReport,
    UtilizationReport,
    merge_utilization_reports,
)


class TestLatencyHelpers:
    def test_bandwidth(self):
        # 1 MB in 1 ms -> 1 GB/s -> 1,048,576 KB/s... expressed in KB/s.
        assert bandwidth_kb_per_sec(1024 * 1024, 1_000_000) == pytest.approx(1024 * 1000)

    def test_bandwidth_zero_time(self):
        assert bandwidth_kb_per_sec(1024, 0) == 0.0

    def test_iops(self):
        assert iops(100, 1_000_000_000) == pytest.approx(100.0)
        assert iops(100, 0) == 0.0

    def test_percentile(self):
        values = [1, 2, 3, 4, 5]
        assert percentile(values, 0.0) == 1
        assert percentile(values, 1.0) == 5
        assert percentile(values, 0.5) == 3
        assert percentile([], 0.5) == 0.0

    def test_percentile_bad_fraction(self):
        with pytest.raises(ValueError):
            percentile([1], 2.0)

    def test_percentile_nearest_rank_even_length(self):
        # Regression: int(round(...)) used banker's rounding, so the p50 of
        # an even-length sample was biased upward (round(1.5) == 2).  The
        # ceil-based nearest rank of [1, 2, 3, 4] at p50 is rank 2 -> 2.
        values = [1, 2, 3, 4]
        assert percentile(values, 0.50) == 2
        assert percentile(values, 0.90) == 4
        assert percentile(values, 0.99) == 4
        evens = list(range(1, 101))
        assert percentile(evens, 0.50) == 50
        assert percentile(evens, 0.90) == 90
        assert percentile(evens, 0.99) == 99

    def test_percentile_nearest_rank_odd_length(self):
        values = [10, 20, 30, 40, 50]
        assert percentile(values, 0.50) == 30
        assert percentile(values, 0.90) == 50
        assert percentile(values, 0.99) == 50
        odds = list(range(1, 102))
        assert percentile(odds, 0.50) == 51
        assert percentile(odds, 0.90) == 91
        assert percentile(odds, 0.99) == 100

    def test_percentile_order_independent(self):
        assert percentile([4, 1, 3, 2], 0.5) == percentile([1, 2, 3, 4], 0.5)

    def test_percentile_inexact_float_rank(self):
        # 0.07 * 100 == 7.000000000000001 in binary; the rank must still be
        # 7, not ceil'd one too high to 8.
        assert percentile(list(range(1, 101)), 0.07) == 7

    def test_merge_latency_stats_is_count_weighted(self):
        few, many = LatencyStats(), LatencyStats()
        few.add(1000)
        for value in (100, 200, 300):
            many.add(value)
        merged = merge_latency_stats([few, many])
        assert merged.count == 4
        # Pooled mean, not the mean of the two means (which would be 600).
        assert merged.mean_ns == pytest.approx((1000 + 100 + 200 + 300) / 4)
        assert merged.percentile_ns(1.0) == 1000
        assert merge_latency_stats([]).count == 0
        # Merging must not alias or mutate the inputs.
        assert few.count == 1 and many.count == 3
        merged.add(5)
        assert few.count == 1 and many.count == 3

    def test_latency_stats(self):
        stats = LatencyStats()
        for value in (100, 200, 300):
            stats.add(value)
        assert stats.count == 3
        assert stats.mean_ns == pytest.approx(200.0)
        assert stats.min_ns == 100
        assert stats.max_ns == 300
        assert stats.percentile_ns(1.0) == 300

    def test_latency_stats_rejects_negative(self):
        with pytest.raises(ValueError):
            LatencyStats().add(-1)

    def test_latency_stats_empty(self):
        stats = LatencyStats()
        assert stats.mean_ns == 0.0
        assert stats.max_ns == 0

    def test_merged(self):
        a, b = LatencyStats(), LatencyStats()
        a.add(10)
        b.add(30)
        assert a.merged_with(b).count == 2


class TestFLPBreakdown:
    def test_record_and_fractions(self):
        flp = FLPBreakdown()
        flp.record(ParallelismClass.NON_PAL, 1)
        flp.record(ParallelismClass.PAL3, 4)
        assert flp.total_transactions == 2
        assert flp.total_requests == 5
        fractions = flp.transaction_fractions()
        assert fractions["NON-PAL"] == pytest.approx(0.5)
        assert fractions["PAL3"] == pytest.approx(0.5)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_request_fractions(self):
        flp = FLPBreakdown()
        flp.record(ParallelismClass.PAL1, 2)
        flp.record(ParallelismClass.PAL2, 2)
        fractions = flp.request_fractions()
        assert fractions["PAL1"] == pytest.approx(0.5)

    def test_empty_fractions(self):
        assert sum(FLPBreakdown().transaction_fractions().values()) == 0.0
        assert sum(FLPBreakdown().request_fractions().values()) == 0.0

    def test_high_flp_fraction(self):
        flp = FLPBreakdown()
        flp.record(ParallelismClass.NON_PAL, 1)
        flp.record(ParallelismClass.PAL3, 4)
        flp.record(ParallelismClass.PAL2, 2)
        assert flp.high_flp_fraction == pytest.approx(2 / 3)
        assert FLPBreakdown().high_flp_fraction == 0.0

    def test_coalescing_and_reduction(self):
        flp = FLPBreakdown()
        flp.record(ParallelismClass.PAL3, 4)
        assert flp.average_requests_per_transaction == 4.0
        assert flp.transaction_reduction_vs(4) == pytest.approx(0.75)
        assert flp.transaction_reduction_vs(0) == 0.0


class TestExecutionBreakdown:
    def test_fractions_sum_to_one(self):
        breakdown = ExecutionBreakdown(
            bus_operation_ns=100,
            bus_contention_ns=50,
            memory_operation_ns=200,
            total_chip_time_ns=1000,
        )
        fractions = breakdown.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions["system_idle"] == pytest.approx(0.65)

    def test_empty_breakdown(self):
        assert sum(ExecutionBreakdown().fractions().values()) == 0.0
        assert ExecutionBreakdown().busy_fraction == 0.0

    def test_idle_never_negative(self):
        breakdown = ExecutionBreakdown(
            bus_operation_ns=600,
            bus_contention_ns=600,
            memory_operation_ns=600,
            total_chip_time_ns=1000,
        )
        assert breakdown.system_idle_ns == 0

    def test_addition(self):
        a = ExecutionBreakdown(10, 20, 30, 100)
        b = ExecutionBreakdown(1, 2, 3, 10)
        combined = a + b
        assert combined.bus_operation_ns == 11
        assert combined.total_chip_time_ns == 110

    def test_busy_fraction(self):
        breakdown = ExecutionBreakdown(100, 0, 400, 1000)
        assert breakdown.busy_fraction == pytest.approx(0.5)


class TestUtilizationReports:
    def test_mean_min_max(self):
        report = UtilizationReport()
        report.add((0, 0), 0.2)
        report.add((0, 1), 0.8)
        assert report.mean == pytest.approx(0.5)
        assert report.minimum == pytest.approx(0.2)
        assert report.maximum == pytest.approx(0.8)

    def test_clamping(self):
        report = UtilizationReport()
        report.add((0, 0), 1.7)
        report.add((0, 1), -0.3)
        assert report.maximum == 1.0
        assert report.minimum == 0.0

    def test_active_fraction_and_imbalance(self):
        report = UtilizationReport()
        report.add((0, 0), 0.0)
        report.add((0, 1), 0.5)
        assert report.active_chip_fraction == pytest.approx(0.5)
        assert report.imbalance() == pytest.approx(2.0)

    def test_empty_report(self):
        report = UtilizationReport()
        assert report.mean == 0.0
        assert report.active_chip_fraction == 0.0
        assert report.imbalance() == 0.0

    def test_idleness_from_measurements(self):
        report = UtilizationReport()
        report.add((0, 0), 0.75)
        report.add((0, 1), 0.25)
        idleness = IdlenessReport.from_measurements(report, [0.4, 0.2])
        assert idleness.inter_chip == pytest.approx(0.5)
        assert idleness.intra_chip == pytest.approx(0.3)
        assert idleness.combined == pytest.approx(0.4)

    def test_idleness_without_busy_chips(self):
        idleness = IdlenessReport.from_measurements(UtilizationReport(), [])
        assert idleness.intra_chip == 0.0

    def test_idleness_excludes_chips_that_did_no_work(self):
        # Regression: a chip that never went busy used to report 0.0 and be
        # kept by the filter, deflating the documented "average over chips
        # that did work"; it now reports the -1.0 sentinel and is excluded,
        # while a busy chip with fully covered dies contributes its real 0.0.
        report = UtilizationReport()
        report.add((0, 0), 0.5)
        report.add((0, 1), 0.5)
        report.add((0, 2), 0.0)
        idleness = IdlenessReport.from_measurements(report, [0.4, 0.2, -1.0])
        assert idleness.intra_chip == pytest.approx(0.3)
        perfect_busy = IdlenessReport.from_measurements(report, [0.4, 0.0, -1.0])
        assert perfect_busy.intra_chip == pytest.approx(0.2)

    def test_empty_imbalance_sentinel(self):
        # The docstring's "1.0 means perfectly balanced" only applies once
        # work exists; an empty (or all-idle) report returns the 0.0
        # "nothing measurable" sentinel, not 1.0.
        assert UtilizationReport().imbalance() == 0.0
        all_idle = UtilizationReport()
        all_idle.add((0, 0), 0.0)
        all_idle.add((0, 1), 0.0)
        assert all_idle.imbalance() == 0.0

    def test_add_clamps_and_overwrites(self):
        report = UtilizationReport()
        report.add((0, 0), 2.5)
        assert report.per_chip[(0, 0)] == 1.0
        report.add((0, 0), -1.0)
        assert report.per_chip[(0, 0)] == 0.0
        assert len(report.per_chip) == 1

    def test_merge_utilization_reports_namespaces_devices(self):
        first, second = UtilizationReport(), UtilizationReport()
        first.add((0, 0), 0.2)
        second.add((0, 0), 0.8)
        second.add((0, 1), 0.4)
        merged = merge_utilization_reports([first, second])
        assert len(merged.per_chip) == 3
        assert merged.per_chip[(0, 0, 0)] == 0.2
        assert merged.per_chip[(1, 0, 0)] == 0.8
        # Chip-count weighted: (0.2 + 0.8 + 0.4) / 3, not mean of means.
        assert merged.mean == pytest.approx(1.4 / 3)
        assert merge_utilization_reports([]).mean == 0.0
        # Inputs must stay untouched.
        assert len(first.per_chip) == 1 and len(second.per_chip) == 2


class TestFormatTable:
    def test_renders_columns(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_empty_rows(self):
        assert format_table([], title="nothing") == "nothing"
        assert format_table([]) == ""
