"""Tests for flash transactions and the transaction builder."""

import pytest

from repro.flash.commands import FlashOp, ParallelismClass, TransactionKind
from repro.flash.geometry import PhysicalPageAddress
from repro.flash.request import MemoryRequest
from repro.flash.transaction import (
    FlashTransaction,
    TransactionBuilder,
    TransactionConstraints,
)


def make_request(io_id=1, op=FlashOp.READ, die=0, plane=0, block=0, page=0, chip=(0, 0), penalty=0):
    channel, chip_idx = chip
    request = MemoryRequest(
        io_id=io_id,
        op=op,
        lpn=page,
        size_bytes=2048,
        address=PhysicalPageAddress(
            channel=channel, chip=chip_idx, die=die, plane=plane, block=block, page=page
        ),
    )
    request.penalty_ns = penalty
    return request


class TestSelection:
    def test_selects_all_distinct_planes(self, builder):
        pending = [make_request(die=d, plane=p) for d in range(2) for p in range(2)]
        selected = builder.select(pending)
        assert len(selected) == 4

    def test_rejects_second_request_on_same_plane(self, builder):
        pending = [make_request(die=0, plane=0, page=0), make_request(die=0, plane=0, page=1)]
        selected = builder.select(pending)
        assert len(selected) == 1

    def test_skips_different_operation(self, builder):
        pending = [make_request(op=FlashOp.READ, die=0), make_request(op=FlashOp.PROGRAM, die=1)]
        selected = builder.select(pending)
        assert len(selected) == 1
        assert selected[0].op is FlashOp.READ

    def test_mixed_ops_allowed_when_constraint_relaxed(self, small_geometry, fast_timing):
        constraints = TransactionConstraints(single_operation_per_transaction=False)
        builder = TransactionBuilder(small_geometry, fast_timing, constraints)
        pending = [make_request(op=FlashOp.READ, die=0), make_request(op=FlashOp.PROGRAM, die=1)]
        assert len(builder.select(pending)) == 2

    def test_respects_max_requests(self, small_geometry, fast_timing):
        constraints = TransactionConstraints(max_requests_per_transaction=2)
        builder = TransactionBuilder(small_geometry, fast_timing, constraints)
        pending = [make_request(die=d, plane=p) for d in range(2) for p in range(2)]
        assert len(builder.select(pending)) == 2

    def test_skips_untranslated_requests(self, builder):
        request = MemoryRequest(io_id=1, op=FlashOp.READ, lpn=0, size_bytes=2048)
        assert builder.select([request]) == []

    def test_empty_pending(self, builder):
        assert builder.select([]) == []

    def test_strict_multiplane_requires_same_page_offset(self, small_geometry, fast_timing):
        constraints = TransactionConstraints(strict_multiplane=True)
        builder = TransactionBuilder(small_geometry, fast_timing, constraints)
        pending = [
            make_request(die=0, plane=0, page=4),
            make_request(die=0, plane=1, page=4),
            make_request(die=0, plane=1, page=5),
        ]
        selected = builder.select(pending)
        assert [req.address.page for req in selected] == [4, 4]

    def test_strict_multiplane_block_offset(self, small_geometry, fast_timing):
        constraints = TransactionConstraints(
            strict_multiplane=True, same_block_offset_for_multiplane=True
        )
        builder = TransactionBuilder(small_geometry, fast_timing, constraints)
        pending = [
            make_request(die=0, plane=0, block=1, page=4),
            make_request(die=0, plane=1, block=2, page=4),
        ]
        assert len(builder.select(pending)) == 1


class TestBuild:
    def test_single_request_is_non_pal_legacy(self, builder):
        transaction = builder.build((0, 0), [make_request()])
        assert transaction.parallelism is ParallelismClass.NON_PAL
        assert transaction.kind is TransactionKind.LEGACY

    def test_two_planes_same_die_is_pal1(self, builder):
        requests = [make_request(die=0, plane=0), make_request(die=0, plane=1)]
        transaction = builder.build((0, 0), requests)
        assert transaction.parallelism is ParallelismClass.PAL1
        assert transaction.kind is TransactionKind.MULTIPLANE

    def test_two_dies_one_plane_each_is_pal2(self, builder):
        requests = [make_request(die=0, plane=0), make_request(die=1, plane=0)]
        transaction = builder.build((0, 0), requests)
        assert transaction.parallelism is ParallelismClass.PAL2

    def test_full_footprint_is_pal3(self, builder):
        requests = [make_request(die=d, plane=p) for d in range(2) for p in range(2)]
        transaction = builder.build((0, 0), requests)
        assert transaction.parallelism is ParallelismClass.PAL3
        assert transaction.kind is TransactionKind.INTERLEAVE_MULTIPLANE

    def test_build_empty_raises(self, builder):
        with pytest.raises(ValueError):
            builder.build((0, 0), [])

    def test_build_from_pending_none_when_empty(self, builder):
        assert builder.build_from_pending((0, 0), []) is None

    def test_erase_kind_for_gc_requests(self, builder):
        request = make_request(op=FlashOp.ERASE)
        request.is_gc = True
        transaction = builder.build((0, 0), [request])
        assert transaction.kind is TransactionKind.ERASE
        assert transaction.is_gc


class TestTiming:
    def test_bus_time_sums_per_request(self, builder, fast_timing):
        requests = [make_request(die=0, plane=0), make_request(die=0, plane=1)]
        transaction = builder.build((0, 0), requests)
        expected = fast_timing.transaction_overhead_ns + 2 * fast_timing.request_bus_time_ns(2048)
        assert transaction.bus_time_ns == expected

    def test_cell_time_is_max_over_dies_for_reads(self, builder, fast_timing):
        requests = [make_request(die=0), make_request(die=1)]
        transaction = builder.build((0, 0), requests)
        assert transaction.cell_time_ns == fast_timing.read_ns

    def test_cell_time_includes_penalties(self, builder, fast_timing):
        requests = [make_request(penalty=5000)]
        transaction = builder.build((0, 0), requests)
        assert transaction.cell_time_ns == fast_timing.read_ns + 5000

    def test_erase_has_no_bus_payload(self, builder, fast_timing):
        request = make_request(op=FlashOp.ERASE)
        transaction = builder.build((0, 0), [request])
        assert transaction.bus_time_ns == fast_timing.transaction_overhead_ns

    def test_service_time(self, builder):
        transaction = builder.build((0, 0), [make_request()])
        assert transaction.service_time_ns == transaction.bus_time_ns + transaction.cell_time_ns


class TestTransactionInvariants:
    def test_rejects_multi_chip_requests(self):
        requests = [make_request(chip=(0, 0)), make_request(chip=(0, 1))]
        with pytest.raises(ValueError):
            FlashTransaction(
                chip_key=(0, 0),
                requests=requests,
                kind=TransactionKind.LEGACY,
                parallelism=ParallelismClass.NON_PAL,
            )

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            FlashTransaction(
                chip_key=(0, 0),
                requests=[],
                kind=TransactionKind.LEGACY,
                parallelism=ParallelismClass.NON_PAL,
            )

    def test_rejects_mismatched_chip_key(self):
        with pytest.raises(ValueError):
            FlashTransaction(
                chip_key=(1, 1),
                requests=[make_request(chip=(0, 0))],
                kind=TransactionKind.LEGACY,
                parallelism=ParallelismClass.NON_PAL,
            )

    def test_properties(self, builder):
        requests = [
            make_request(io_id=1, die=0, plane=0),
            make_request(io_id=2, die=1, plane=1),
        ]
        transaction = builder.build((0, 0), requests)
        assert transaction.num_requests == 2
        assert transaction.dies == [0, 1]
        assert transaction.planes_by_die == {0: [0], 1: [1]}
        assert transaction.io_ids == [1, 2]
        assert transaction.total_bytes == 4096
