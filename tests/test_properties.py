"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.flash.commands import FlashOp, ParallelismClass
from repro.flash.geometry import SSDGeometry
from repro.flash.geometry import PhysicalPageAddress
from repro.flash.request import MemoryRequest
from repro.flash.timing import FlashTiming
from repro.flash.transaction import TransactionBuilder
from repro.nvmhc.bitmap import CompletionBitmap
from repro.nvmhc.queue import DeviceQueue
from repro.sim.config import SimulationConfig
from repro.sim.ssd import run_workload
from repro.workloads.request import IOKind, IORequest


geometries = st.builds(
    SSDGeometry,
    num_channels=st.integers(min_value=1, max_value=4),
    chips_per_channel=st.integers(min_value=1, max_value=4),
    dies_per_chip=st.integers(min_value=1, max_value=4),
    planes_per_die=st.integers(min_value=1, max_value=4),
    blocks_per_plane=st.integers(min_value=1, max_value=8),
    pages_per_block=st.integers(min_value=1, max_value=16),
    page_size_bytes=st.sampled_from([512, 2048, 4096]),
)


class TestGeometryProperties:
    @given(geometry=geometries, data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_ppn_round_trip(self, geometry, data):
        ppn = data.draw(st.integers(min_value=0, max_value=geometry.total_pages - 1))
        address = geometry.ppn_to_address(ppn)
        assert geometry.address_to_ppn(address) == ppn

    @given(geometry=geometries)
    @settings(max_examples=40, deadline=None)
    def test_chip_enumeration_is_complete(self, geometry):
        keys = list(geometry.iter_chip_keys())
        assert len(keys) == geometry.num_chips
        assert len(set(keys)) == geometry.num_chips
        for channel, chip in keys:
            assert 0 <= channel < geometry.num_channels
            assert 0 <= chip < geometry.chips_per_channel

    @given(geometry=geometries, size=st.integers(min_value=1, max_value=1 << 22))
    @settings(max_examples=60, deadline=None)
    def test_bytes_to_pages_covers_size(self, geometry, size):
        pages = geometry.bytes_to_pages(size)
        assert pages * geometry.page_size_bytes >= size
        assert (pages - 1) * geometry.page_size_bytes < size


class TestTimingProperties:
    @given(page=st.integers(min_value=0, max_value=4096))
    @settings(max_examples=80, deadline=None)
    def test_program_latency_within_bounds(self, page):
        timing = FlashTiming()
        latency = timing.program_latency_ns(page)
        assert timing.program_fast_ns <= latency <= timing.program_slow_ns

    @given(num_bytes=st.integers(min_value=0, max_value=1 << 20))
    @settings(max_examples=60, deadline=None)
    def test_transfer_latency_monotone(self, num_bytes):
        timing = FlashTiming()
        assert timing.transfer_latency_ns(num_bytes + 1024) >= timing.transfer_latency_ns(
            num_bytes
        )


class TestTransactionBuilderProperties:
    @given(
        footprint=st.lists(
            st.tuples(st.integers(min_value=0, max_value=1), st.integers(min_value=0, max_value=1)),
            min_size=1,
            max_size=12,
        ),
        is_write=st.booleans(),
    )
    @settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_selection_never_reuses_a_plane(self, footprint, is_write):
        geometry = SSDGeometry(
            num_channels=1,
            chips_per_channel=1,
            dies_per_chip=2,
            planes_per_die=2,
            blocks_per_plane=4,
            pages_per_block=8,
        )
        builder = TransactionBuilder(geometry, FlashTiming())
        op = FlashOp.PROGRAM if is_write else FlashOp.READ
        pending = [
            MemoryRequest(
                io_id=index,
                op=op,
                lpn=index,
                size_bytes=2048,
                address=PhysicalPageAddress(0, 0, die, plane, 0, index % 8),
            )
            for index, (die, plane) in enumerate(footprint)
        ]
        transaction = builder.build_from_pending((0, 0), pending)
        assert transaction is not None
        plane_targets = [(req.address.die, req.address.plane) for req in transaction.requests]
        assert len(plane_targets) == len(set(plane_targets))
        # Classification is consistent with the footprint actually selected.
        dies = {die for die, _ in plane_targets}
        max_planes = max(
            sum(1 for d, _ in plane_targets if d == die) for die in dies
        )
        expected_high = len(dies) > 1 and max_planes > 1
        assert (transaction.parallelism is ParallelismClass.PAL3) == expected_high

    @given(
        num_requests=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_cell_time_at_least_slowest_request(self, num_requests):
        geometry = SSDGeometry(
            num_channels=1, chips_per_channel=1, dies_per_chip=2, planes_per_die=2
        )
        timing = FlashTiming()
        builder = TransactionBuilder(geometry, timing)
        pending = [
            MemoryRequest(
                io_id=i,
                op=FlashOp.PROGRAM,
                lpn=i,
                size_bytes=2048,
                address=PhysicalPageAddress(0, 0, i % 2, (i // 2) % 2, 0, i),
            )
            for i in range(num_requests)
        ]
        transaction = builder.build_from_pending((0, 0), pending)
        slowest = max(
            timing.program_latency_ns(req.address.page) for req in transaction.requests
        )
        assert transaction.cell_time_ns >= slowest


class TestBitmapProperties:
    @given(
        order=st.permutations(list(range(8))),
    )
    @settings(max_examples=60, deadline=None)
    def test_delivery_is_always_in_order(self, order):
        bitmap = CompletionBitmap(8)
        delivered = []
        for index in order:
            bitmap.clear(index)
            delivered.extend(bitmap.deliverable_payloads())
        assert delivered == list(range(8))
        assert bitmap.all_completed


class TestQueueProperties:
    @given(
        depth=st.integers(min_value=1, max_value=8),
        arrivals=st.integers(min_value=1, max_value=24),
    )
    @settings(max_examples=40, deadline=None)
    def test_occupancy_never_exceeds_depth(self, depth, arrivals):
        queue = DeviceQueue(depth=depth)
        admitted = []
        for index in range(arrivals):
            io = IORequest(kind=IOKind.READ, offset_bytes=0, size_bytes=2048, arrival_ns=index)
            tag = queue.submit(io, index)
            assert queue.occupancy <= depth
            if tag is not None:
                admitted.append(tag)
        # Retiring everything admits the backlog without ever exceeding depth.
        while admitted:
            tag = admitted.pop(0)
            queue.retire(tag.io_id)
            admitted.extend(queue.admit_from_backlog(100))
            assert queue.occupancy <= depth
        assert queue.backlog_size == 0


class TestSimulatorProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_requests=st.integers(min_value=1, max_value=12),
        size_kb=st.sampled_from([2, 4, 16, 64]),
        read_fraction=st.sampled_from([0.0, 0.5, 1.0]),
        scheduler=st.sampled_from(["VAS", "PAS", "SPK1", "SPK2", "SPK3"]),
    )
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_every_io_completes_and_work_is_conserved(
        self, seed, num_requests, size_kb, read_fraction, scheduler
    ):
        import random

        rng = random.Random(seed)
        config = SimulationConfig.small(gc_enabled=False)
        workload = []
        for index in range(num_requests):
            offset = rng.randrange(0, 8 * 1024 * 1024, 2048)
            workload.append(
                IORequest(
                    kind=IOKind.READ if rng.random() < read_fraction else IOKind.WRITE,
                    offset_bytes=offset,
                    size_bytes=size_kb * 1024,
                    arrival_ns=index * rng.choice([0, 500, 2000]),
                )
            )
        result = run_workload(workload, scheduler=scheduler, config=config)
        assert result.completed_ios == num_requests
        expected_pages = sum(io.num_pages(2048) for io in workload)
        assert result.memory_requests_served == expected_pages
        assert result.transactions <= expected_pages
        assert result.makespan_ns > 0
