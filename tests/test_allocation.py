"""Tests for the page allocator and striping orders."""

import pytest

from repro.ftl.allocation import AllocationOrder, PageAllocator


@pytest.fixture
def allocator(small_geometry, small_chips):
    return PageAllocator(small_geometry, small_chips)


class TestStaticLayout:
    def test_consecutive_lpns_stripe_across_channels(self, allocator):
        first = allocator.static_address(0)
        second = allocator.static_address(1)
        assert first.channel != second.channel

    def test_static_address_deterministic(self, allocator):
        assert allocator.static_address(123) == allocator.static_address(123)

    def test_static_address_covers_all_planes(self, allocator, small_geometry):
        planes = {
            allocator.static_address(lpn).plane_key
            for lpn in range(small_geometry.num_planes)
        }
        assert len(planes) == small_geometry.num_planes

    def test_static_address_negative_lpn(self, allocator):
        with pytest.raises(ValueError):
            allocator.static_address(-1)

    def test_static_address_wraps_beyond_capacity(self, allocator, small_geometry):
        address = allocator.static_address(small_geometry.total_pages + 5)
        small_geometry._validate_address(address)  # must be a legal address

    def test_plane_for_stripe_matches_sequence(self, allocator):
        assert allocator.plane_for_stripe(0) == allocator.plane_sequence[0]
        assert allocator.plane_for_stripe(len(allocator.plane_sequence)) == (
            allocator.plane_sequence[0]
        )


class TestDynamicAllocation:
    def test_allocations_are_unique(self, allocator, small_geometry):
        seen = set()
        for _ in range(small_geometry.num_planes * 4):
            address = allocator.allocate()
            assert address not in seen
            seen.add(address)

    def test_round_robin_spreads_over_channels(self, allocator, small_geometry):
        channels = {allocator.allocate().channel for _ in range(small_geometry.num_channels)}
        assert channels == set(range(small_geometry.num_channels))

    def test_preferred_plane_respected(self, allocator):
        preferred = (1, 1, 1, 1)
        address = allocator.allocate(preferred_plane=preferred)
        assert address.plane_key == preferred

    def test_preferred_plane_falls_back_when_full(self, allocator, small_geometry, small_chips):
        preferred = (0, 0, 0, 0)
        plane = small_chips[(0, 0)].plane(0, 0)
        while plane.free_pages:
            plane.allocate_page()
        address = allocator.allocate(preferred_plane=preferred)
        assert address.plane_key != preferred

    def test_exhaustion_raises(self, small_geometry, small_chips):
        allocator = PageAllocator(small_geometry, small_chips)
        for _ in range(small_geometry.total_pages):
            allocator.allocate()
        with pytest.raises(RuntimeError):
            allocator.allocate()

    def test_free_pages_decreases(self, allocator, small_geometry):
        before = allocator.free_pages()
        allocator.allocate()
        assert allocator.free_pages() == before - 1


class TestAllocationOrders:
    @pytest.mark.parametrize("order", list(AllocationOrder))
    def test_every_order_covers_all_planes(self, small_geometry, small_chips, order):
        allocator = PageAllocator(small_geometry, small_chips, order)
        assert len(set(allocator.plane_sequence)) == small_geometry.num_planes

    def test_channel_first_order_varies_channel_fastest(self, small_geometry, small_chips):
        allocator = PageAllocator(
            small_geometry, small_chips, AllocationOrder.CHANNEL_WAY_DIE_PLANE
        )
        sequence = allocator.plane_sequence
        assert sequence[0][0] != sequence[1][0]

    def test_plane_first_order_varies_plane_fastest(self, small_geometry, small_chips):
        allocator = PageAllocator(
            small_geometry, small_chips, AllocationOrder.PLANE_DIE_WAY_CHANNEL
        )
        sequence = allocator.plane_sequence
        first, second = sequence[0], sequence[1]
        assert first[3] != second[3]
        assert first[0] == second[0]
