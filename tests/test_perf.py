"""Tests for the benchmark-trajectory subsystem (``repro.perf``).

Covers the three contract surfaces:

* trajectory schema: write -> load round-trip, schema-version rejection;
* comparison semantics: the exact-threshold edge, missing cases, improved
  cases, fingerprint incomparability and the digest gate;
* bit-identity: the tiny pinned-seed suite must reproduce the golden result
  digests recorded *before* the hot-path optimization pass
  (``tests/data/perf_golden.json``) - any semantic drift in the simulator
  shows up here as a digest mismatch.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.perf.compare import compare_trajectories
from repro.perf.record import (
    SCHEMA_VERSION,
    CaseRecord,
    Trajectory,
    load_trajectory,
    run_case,
    write_trajectory,
)
from repro.perf.suite import canonical_suite, tiny_suite

GOLDEN_PATH = Path(__file__).parent / "data" / "perf_golden.json"


def make_case(
    name: str,
    eps: float,
    *,
    fingerprint: str = "fp",
    digest: str = "digest",
    rss_mb: float = 50.0,
) -> CaseRecord:
    return CaseRecord(
        name=name,
        description=f"case {name}",
        fingerprint=fingerprint,
        jobs=1,
        ios_completed=10,
        events=int(eps),
        wall_s=1.0,
        sim_wall_s=1.0,
        events_per_sec=eps,
        peak_rss_kb=int(rss_mb * 1024),
        result_digest=digest,
        wall_time_s=1.0,
        peak_rss_mb=rss_mb,
    )


def make_trajectory(*cases: CaseRecord, scale: str = "quick") -> Trajectory:
    return Trajectory(
        schema_version=SCHEMA_VERSION,
        bench_id="BENCH_5",
        scale=scale,
        python="3.11.0",
        platform="test",
        cases=tuple(cases),
    )


class TestTrajectorySchema:
    def test_round_trip(self, tmp_path):
        trajectory = make_trajectory(make_case("a", 100.0), make_case("b", 200.0))
        path = write_trajectory(trajectory, tmp_path / "t.json")
        loaded = load_trajectory(path)
        assert loaded.schema_version == SCHEMA_VERSION
        assert loaded.bench_id == trajectory.bench_id
        assert loaded.scale == trajectory.scale
        assert loaded.cases == trajectory.cases

    def test_summary_block_written(self, tmp_path):
        trajectory = make_trajectory(make_case("a", 100.0), make_case("b", 300.0))
        path = write_trajectory(trajectory, tmp_path / "t.json")
        document = json.loads(path.read_text())
        assert document["summary"]["total_events"] == trajectory.total_events
        assert document["summary"]["overall_events_per_sec"] == pytest.approx(
            trajectory.overall_events_per_sec, rel=1e-3
        )

    def test_unknown_schema_version_rejected(self, tmp_path):
        trajectory = make_trajectory(make_case("a", 100.0))
        path = write_trajectory(trajectory, tmp_path / "t.json")
        document = json.loads(path.read_text())
        document["schema_version"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="schema"):
            load_trajectory(path)

    def test_overall_events_per_sec(self):
        trajectory = make_trajectory(make_case("a", 100.0), make_case("b", 300.0))
        # Two cases of 1s each: (100 + 300) events over 2 seconds.
        assert trajectory.overall_events_per_sec == pytest.approx(200.0)


class TestCompareThresholds:
    def test_exactly_at_threshold_passes(self):
        baseline = make_trajectory(make_case("a", 1000.0))
        current = make_trajectory(make_case("a", 750.0))
        comparison = compare_trajectories(baseline, current, threshold=0.25)
        assert not comparison.regressions
        assert comparison.ok

    def test_just_past_threshold_fails(self):
        baseline = make_trajectory(make_case("a", 1000.0))
        current = make_trajectory(make_case("a", 749.9))
        comparison = compare_trajectories(baseline, current, threshold=0.25)
        assert [d.name for d in comparison.regressions] == ["a"]
        assert not comparison.ok

    def test_improvement_passes(self):
        baseline = make_trajectory(make_case("a", 1000.0))
        current = make_trajectory(make_case("a", 2000.0))
        comparison = compare_trajectories(baseline, current)
        assert comparison.ok
        assert comparison.deltas[0].ratio == pytest.approx(2.0)

    def test_missing_case_fails(self):
        baseline = make_trajectory(make_case("a", 1000.0), make_case("b", 1000.0))
        current = make_trajectory(make_case("a", 1000.0))
        comparison = compare_trajectories(baseline, current)
        assert comparison.missing == ("b",)
        assert not comparison.ok

    def test_new_case_is_not_gated(self):
        baseline = make_trajectory(make_case("a", 1000.0))
        current = make_trajectory(make_case("a", 1000.0), make_case("b", 10.0))
        comparison = compare_trajectories(baseline, current)
        assert comparison.new == ("b",)
        assert comparison.ok

    def test_changed_fingerprint_is_incomparable(self):
        baseline = make_trajectory(make_case("a", 1000.0, fingerprint="old"))
        current = make_trajectory(make_case("a", 4000.0, fingerprint="new"))
        comparison = compare_trajectories(baseline, current)
        assert [d.name for d in comparison.incomparable] == ["a"]
        assert not comparison.ok

    def test_digest_gate_only_with_require_identical(self):
        baseline = make_trajectory(make_case("a", 1000.0, digest="x"))
        current = make_trajectory(make_case("a", 1000.0, digest="y"))
        assert compare_trajectories(baseline, current).ok
        comparison = compare_trajectories(baseline, current, require_identical=True)
        assert [d.name for d in comparison.digest_mismatches] == ["a"]
        assert not comparison.ok

    def test_invalid_threshold_rejected(self):
        baseline = make_trajectory(make_case("a", 1000.0))
        with pytest.raises(ValueError):
            compare_trajectories(baseline, baseline, threshold=1.0)

    def test_report_mentions_every_case(self):
        baseline = make_trajectory(make_case("a", 1000.0), make_case("b", 1000.0))
        current = make_trajectory(make_case("a", 100.0), make_case("c", 1.0))
        report = compare_trajectories(baseline, current).report()
        for token in ("a", "b", "c", "REGRESSED", "MISSING", "FAIL"):
            assert token in report


class TestRssGate:
    """compare gates peak RSS with its own, tighter threshold."""

    def test_rss_growth_within_threshold_passes(self):
        baseline = make_trajectory(make_case("a", 1000.0, rss_mb=100.0))
        current = make_trajectory(make_case("a", 1000.0, rss_mb=114.9))
        comparison = compare_trajectories(baseline, current, rss_threshold=0.15)
        assert not comparison.rss_regressions
        assert comparison.ok

    def test_rss_growth_past_threshold_fails(self):
        baseline = make_trajectory(make_case("a", 1000.0, rss_mb=100.0))
        current = make_trajectory(make_case("a", 1000.0, rss_mb=115.1))
        comparison = compare_trajectories(baseline, current, rss_threshold=0.15)
        assert [d.name for d in comparison.rss_regressions] == ["a"]
        assert not comparison.ok
        assert "RSS REGRESSED" in comparison.report()

    def test_rss_gate_independent_of_throughput(self):
        # A case can get faster and still fail the comparison on memory.
        baseline = make_trajectory(make_case("a", 1000.0, rss_mb=100.0))
        current = make_trajectory(make_case("a", 4000.0, rss_mb=200.0))
        comparison = compare_trajectories(baseline, current)
        assert not comparison.regressions
        assert comparison.rss_regressions
        assert not comparison.ok

    def test_missing_baseline_rss_is_not_gated(self):
        # Trajectories recorded before RSS tracking carry 0.0 - growth
        # against an unknown baseline must not fail the gate.
        baseline = make_trajectory(make_case("a", 1000.0, rss_mb=0.0))
        current = make_trajectory(make_case("a", 1000.0, rss_mb=500.0))
        comparison = compare_trajectories(baseline, current)
        assert not comparison.rss_regressions
        assert comparison.ok

    def test_rss_reduction_passes(self):
        baseline = make_trajectory(make_case("a", 1000.0, rss_mb=100.0))
        current = make_trajectory(make_case("a", 1000.0, rss_mb=40.0))
        assert compare_trajectories(baseline, current).ok

    def test_invalid_rss_threshold_rejected(self):
        baseline = make_trajectory(make_case("a", 1000.0))
        with pytest.raises(ValueError, match="rss_threshold"):
            compare_trajectories(baseline, baseline, rss_threshold=1.0)


class TestSuiteDefinitions:
    def test_canonical_suite_shape(self):
        suite = canonical_suite("quick")
        names = [case.name for case in suite]
        assert names == [
            "figure06",
            "transfer",
            "array4",
            "bursty",
            "aged",
            "gcheavy",
            "zoo",
        ]
        assert all(case.jobs for case in suite)

    def test_full_scale_grows_workloads(self):
        quick = {case.name: case for case in canonical_suite("quick")}
        full = {case.name: case for case in canonical_suite("full")}
        assert quick.keys() == full.keys()
        # Different request counts must change the case fingerprints.
        for name in quick:
            assert quick[name].fingerprint() != full[name].fingerprint()

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            canonical_suite("huge")

    def test_case_fingerprints_are_stable(self):
        first = {case.name: case.fingerprint() for case in canonical_suite("quick")}
        second = {case.name: case.fingerprint() for case in canonical_suite("quick")}
        assert first == second


class TestBitIdentity:
    """The optimized simulator must reproduce pre-optimization results."""

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(GOLDEN_PATH.read_text())["cases"]

    @pytest.mark.parametrize("case_name", [case.name for case in tiny_suite()])
    def test_tiny_case_matches_pre_optimization_golden(self, golden, case_name):
        case = {c.name: c for c in tiny_suite()}[case_name]
        record = run_case(case)
        assert case_name in golden, "golden file is missing a tiny case"
        expected = golden[case_name]
        assert record.fingerprint == expected["fingerprint"], (
            "tiny-suite workload recipe changed; bit-identity against the "
            "golden digests is no longer meaningful - re-record the goldens "
            "only together with an intentional semantics change"
        )
        assert record.result_digest == expected["result_digest"], (
            f"simulation results of {case_name!r} diverged from the "
            "pre-optimization golden digest"
        )

    def test_repeat_runs_are_deterministic(self):
        case = tiny_suite()[0]
        first = run_case(case)
        second = run_case(case, repeat=2)
        assert first.result_digest == second.result_digest
        assert first.events == second.events


class TestCommittedTrajectories:
    """The committed BENCH files must parse and prove the 2x claim."""

    def test_committed_files_load(self):
        root = Path(__file__).resolve().parents[1]
        baseline = load_trajectory(root / "BENCH_5_baseline.json")
        current = load_trajectory(root / "BENCH_5.json")
        assert {c.name for c in baseline.cases} == {c.name for c in current.cases}

    def test_committed_speedup_at_least_2x(self):
        root = Path(__file__).resolve().parents[1]
        baseline = load_trajectory(root / "BENCH_5_baseline.json")
        current = load_trajectory(root / "BENCH_5.json")
        # The PR-5 hot-path pass deliberately traded ~30% RSS for the 2x
        # speedup, so the historical pair needs a looser memory gate than
        # the default; new recordings are held to DEFAULT_RSS_THRESHOLD.
        comparison = compare_trajectories(
            baseline, current, rss_threshold=0.5, require_identical=True
        )
        assert comparison.ok, comparison.report()
        assert not comparison.digest_mismatches, "optimized results are not bit-identical"
        ratio = current.overall_events_per_sec / baseline.overall_events_per_sec
        assert ratio >= 2.0, f"committed trajectories show only {ratio:.2f}x"

    def test_bench6_bit_identical_to_bench5(self):
        # The PR-6 batched-core pass must not change a single simulation
        # result: every case digest of BENCH_6 matches BENCH_5 exactly.
        root = Path(__file__).resolve().parents[1]
        previous = load_trajectory(root / "BENCH_5.json")
        current = load_trajectory(root / "BENCH_6.json")
        previous_by_name = {c.name: c for c in previous.cases}
        assert {c.name for c in current.cases} == set(previous_by_name)
        for case in current.cases:
            assert (
                case.result_digest == previous_by_name[case.name].result_digest
            ), f"{case.name} result drifted across the PR-6 optimization pass"

    def test_bench6_accelerates_gc_bound_cases(self):
        # The GC kernel overhaul targets the two GC-dominated cases; the
        # committed pair must show the gain even with host-speed noise.
        root = Path(__file__).resolve().parents[1]
        previous = load_trajectory(root / "BENCH_5.json")
        current = load_trajectory(root / "BENCH_6.json")
        previous_by_name = {c.name: c for c in previous.cases}
        for name, floor in (("gcheavy", 1.2), ("aged", 1.1)):
            ratio = (
                current.case(name).events_per_sec
                / previous_by_name[name].events_per_sec
            )
            assert ratio >= floor, f"{name} shows only {ratio:.2f}x over BENCH_5"


class TestRecordValidation:
    def test_repeat_must_be_positive(self):
        with pytest.raises(ValueError):
            run_case(tiny_suite()[0], repeat=0)

    def test_case_record_round_trips_through_replace(self):
        record = make_case("a", 10.0)
        assert replace(record, name="b").name == "b"

    def test_recorded_case_carries_wall_time_and_rss(self):
        record = run_case(tiny_suite()[0])
        assert record.wall_time_s == record.wall_s > 0.0
        assert record.peak_rss_mb == pytest.approx(record.peak_rss_kb / 1024.0, abs=0.01)
        assert record.peak_rss_mb > 0.0

    def test_wall_time_and_rss_survive_write_load(self, tmp_path):
        trajectory = make_trajectory(make_case("a", 100.0, rss_mb=123.5))
        loaded = load_trajectory(write_trajectory(trajectory, tmp_path / "t.json"))
        assert loaded.cases[0].wall_time_s == 1.0
        assert loaded.cases[0].peak_rss_mb == 123.5

    def test_load_backfills_wall_time_and_rss_for_old_documents(self, tmp_path):
        # Pre-PR-6 trajectories do not have the restated fields; loading
        # derives them from wall_s / peak_rss_kb so the RSS gate still works.
        trajectory = make_trajectory(make_case("a", 100.0, rss_mb=64.0))
        path = write_trajectory(trajectory, tmp_path / "t.json")
        document = json.loads(path.read_text())
        for raw in document["cases"]:
            del raw["wall_time_s"]
            del raw["peak_rss_mb"]
        path.write_text(json.dumps(document))
        loaded = load_trajectory(path)
        assert loaded.cases[0].wall_time_s == 1.0
        assert loaded.cases[0].peak_rss_mb == pytest.approx(64.0)


class TestProfileCase:
    def test_profile_case_returns_cumulative_table(self):
        from repro.perf.record import profile_case

        table = profile_case(tiny_suite()[0], top_n=10)
        assert "cumulative" in table
        assert "function calls" in table
        # The simulator's event loop must show up in its own profile.
        assert "ssd.py" in table
