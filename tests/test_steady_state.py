"""Tests for the steady-state experiment (over-provisioning x fill x scheduler)."""

from __future__ import annotations

import pytest

from repro.experiments import steady_state
from repro.experiments.engine import ExecutionEngine
from repro.lifetime.state import DeviceState
from repro.scenarios.library import aged_device_state, sustained_write_scenario

QUICK = dict(
    overprovisioning=(0.07, 0.28),
    fill_states=("fresh", "aged", "steady"),
    schedulers=("VAS", "SPK3"),
    num_chips=16,
    requests_per_point=16,
)


@pytest.fixture(scope="module")
def rows():
    return steady_state.run_steady_state(**QUICK, engine=ExecutionEngine("serial"))


class TestSpec:
    def test_grid_shape_and_keys(self):
        spec = steady_state.build_spec(**QUICK)
        assert len(spec) == 2 * 3 * 2
        keys = {job.key for job in spec.jobs}
        assert (0.07, "aged", "SPK3") in keys
        assert (0.28, "fresh", "VAS") in keys

    def test_device_state_for(self):
        assert steady_state.device_state_for("fresh") is None
        aged = steady_state.device_state_for("aged")
        assert isinstance(aged, DeviceState) and not aged.steady_state
        assert steady_state.device_state_for("steady").steady_state
        with pytest.raises(ValueError):
            steady_state.device_state_for("bogus")

    def test_aged_cells_carry_state_in_config(self):
        spec = steady_state.build_spec(**QUICK)
        for job in spec.jobs:
            _, state_name, scheduler = job.key
            if state_name == "fresh":
                assert job.config.device_state is None
            else:
                assert job.config.device_state is not None
            assert job.config.gc_enabled

    def test_workload_targets_live_region(self):
        spec = steady_state.build_spec(**QUICK)
        config = spec.jobs[0].config
        live_bytes = int(
            config.geometry.total_pages
            * (1.0 - max(QUICK["overprovisioning"]))
            * aged_device_state().fill_fraction
            * config.geometry.page_size_bytes
        )
        scenario = dict(spec.jobs[0].workload.params)["scenario"]
        tenant_params = dict(scenario.phases[0].tenants[0].params)
        assert tenant_params["address_space_bytes"] <= live_bytes


class TestRows:
    def test_row_shape(self, rows):
        assert len(rows) == 2 * 3 * 2
        for row in rows:
            assert row["write_amplification"] >= 1.0
            assert row["bandwidth_kb_s"] > 0

    def test_fresh_cells_have_unit_wa(self, rows):
        for row in rows:
            if row["state"] == "fresh":
                assert row["write_amplification"] == 1.0
                assert row["gc_invocations"] == 0

    def test_aged_cells_amplify(self, rows):
        for row in rows:
            if row["state"] == "aged":
                assert row["write_amplification"] > 1.0
                assert row["gc_invocations"] > 0

    def test_steady_cells_converged(self, rows):
        for row in rows:
            if row["state"] == "steady":
                assert row["steady_passes"] >= 1
                assert row["steady_wa"] >= 1.0

    def test_overprovisioning_lowers_wa(self, rows):
        for state in ("aged", "steady"):
            curves = steady_state.wa_by_overprovisioning(rows, state=state)
            for scheduler, points in curves.items():
                ops = [op for op, _ in points]
                was = [wa for _, wa in points]
                assert ops == sorted(ops)
                assert was[-1] < was[0], (state, scheduler, points)

    def test_aging_costs_bandwidth(self, rows):
        cost = steady_state.aging_cost(rows)
        assert cost, "expected fresh/steady pairs"
        for (_, scheduler), value in cost.items():
            assert 0.0 < value < 1.0

    def test_wa_is_scheduler_independent(self, rows):
        """GC bookkeeping depends on the write stream, not the scheduler."""
        by_cell = {}
        for row in rows:
            by_cell.setdefault((row["overprovisioning"], row["state"]), set()).add(
                row["write_amplification"]
            )
        for cell, was in by_cell.items():
            assert len(was) == 1, cell


class TestScenarioLibrary:
    def test_sustained_write_scenario_is_pure_writes(self):
        scenario = sustained_write_scenario(num_requests=32, seed=5)
        requests = scenario.build()
        assert len(requests) == 32
        assert all(io.is_write for io in requests)
        assert scenario.fingerprint() == sustained_write_scenario(
            num_requests=32, seed=5
        ).fingerprint()

    def test_aged_device_state_variants(self):
        plain = aged_device_state()
        steady = aged_device_state(steady_state=True)
        assert not plain.steady_state and steady.steady_state
        assert plain.fingerprint() != steady.fingerprint()
