"""Tests for the windowed (streaming) metrics path.

The collector's ``history="windowed"`` mode is what makes long trace
replays memory-flat: aggregate latency numbers stay exact while per-sample
history (time series, percentile population) is bounded by the window.
These tests pin three contracts:

* parity - windowed aggregates match the full-history collector exactly;
* truncation - per-sample surfaces are capped at the window;
* flatness - peak allocation during collection does not grow with the
  number of completions (the acceptance criterion for day-long replays).
"""

from __future__ import annotations

import gc
import tracemalloc

import pytest

from repro.metrics.collector import MetricsCollector
from repro.metrics.latency import LatencyStats, StreamingLatencyStats
from repro.sim.config import SimulationConfig
from repro.sim.ssd import SSDSimulator, run_workload
from repro.workloads.request import IOKind, IORequest
from repro.workloads.synthetic import generate_random_workload

KB = 1024


def make_ios(count):
    return [
        IORequest(
            kind=IOKind.READ if i % 2 else IOKind.WRITE,
            offset_bytes=(i % 64) * 4 * KB,
            size_bytes=4 * KB,
            arrival_ns=i * 1_000,
        )
        for i in range(count)
    ]


class TestStreamingLatencyStats:
    def test_aggregates_exact_across_window_wrap(self):
        window = 8
        streaming = StreamingLatencyStats(window_size=window)
        full = LatencyStats()
        samples = [50, 10, 900, 3, 77, 77, 1000, 4, 2, 60, 31, 500]
        assert len(samples) > window
        for value in samples:
            streaming.add(value)
            full.add(value)
        assert streaming.count == full.count
        assert streaming.mean_ns == pytest.approx(full.mean_ns)
        assert streaming.min_ns == full.min_ns
        assert streaming.max_ns == full.max_ns

    def test_samples_window_is_most_recent_oldest_first(self):
        streaming = StreamingLatencyStats(window_size=4)
        for value in range(1, 11):
            streaming.add(value)
        assert streaming.samples_ns == [7, 8, 9, 10]

    def test_samples_before_wrap(self):
        streaming = StreamingLatencyStats(window_size=8)
        for value in (5, 3, 9):
            streaming.add(value)
        assert streaming.samples_ns == [5, 3, 9]

    def test_percentile_over_window(self):
        streaming = StreamingLatencyStats(window_size=4)
        for value in (1_000_000, 1, 2, 3, 4):  # the huge sample fell out
            streaming.add(value)
        assert streaming.percentile_ns(1.0) == 4
        assert streaming.max_ns == 1_000_000  # but max stays exact

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            StreamingLatencyStats().add(-1)

    def test_merged_with_concatenates_windows(self):
        a = StreamingLatencyStats(window_size=4)
        b = LatencyStats()
        for value in (1, 2):
            a.add(value)
        b.add(3)
        merged = a.merged_with(b)
        assert isinstance(merged, LatencyStats)
        assert sorted(merged.samples_ns) == [1, 2, 3]


class TestCollectorModes:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="history"):
            MetricsCollector(history="forever")

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            MetricsCollector(history="windowed", window=0)

    def test_windowed_aggregates_match_full(self):
        full = MetricsCollector()
        windowed = MetricsCollector(history="windowed", window=16)
        for i, io in enumerate(make_ios(100)):
            for collector in (full, windowed):
                collector.on_io_arrival(io)
                collector.on_io_complete(io, io.arrival_ns + 40_000 + (i % 9) * 500)
        assert windowed.completed_ios == full.completed_ios
        assert windowed.completed_reads == full.completed_reads
        assert windowed.total_bytes == full.total_bytes
        assert windowed.latency.count == full.latency.count
        assert windowed.latency.mean_ns == pytest.approx(full.latency.mean_ns)
        assert windowed.latency.min_ns == full.latency.min_ns
        assert windowed.latency.max_ns == full.latency.max_ns
        assert windowed.makespan_ns == full.makespan_ns

    def test_windowed_time_series_is_truncated_to_window(self):
        window = 16
        collector = MetricsCollector(history="windowed", window=window)
        ios = make_ios(50)
        for io in ios:
            collector.on_io_arrival(io)
            collector.on_io_complete(io, io.arrival_ns + 10_000)
        series = collector.time_series
        assert len(series) == window
        # The retained points are the most recent completions, in order.
        assert [point.io_id for point in series] == [io.io_id for io in ios[-window:]]

    def test_full_time_series_unbounded(self):
        collector = MetricsCollector()
        for io in make_ios(50):
            collector.on_io_arrival(io)
            collector.on_io_complete(io, io.arrival_ns + 10_000)
        assert len(collector.time_series) == 50


class TestSimulatorWindowedParity:
    def run_pair(self, config, n=48):
        def fresh():
            return generate_random_workload(
                num_requests=n,
                size_bytes=16 * KB,
                address_space_bytes=16 * 1024 * KB,
                read_fraction=0.6,
                interarrival_ns=2_000,
                seed=11,
            )

        full = run_workload(fresh(), scheduler="SPK3", config=config)
        windowed = run_workload(
            fresh(),
            scheduler="SPK3",
            config=config,
            metrics_history="windowed",
            metrics_window=8,
        )
        return full, windowed

    def test_windowed_run_matches_full_aggregates(self, test_config):
        full, windowed = self.run_pair(test_config)
        assert windowed.completed_ios == full.completed_ios
        assert windowed.makespan_ns == full.makespan_ns
        assert windowed.latency.count == full.latency.count
        assert windowed.latency.mean_ns == pytest.approx(full.latency.mean_ns)
        assert windowed.latency.max_ns == full.latency.max_ns
        assert windowed.transactions == full.transactions

    def test_default_mode_is_full_history(self, test_config):
        simulator = SSDSimulator(test_config, "SPK3")
        assert isinstance(simulator.metrics.latency, LatencyStats)


class TestPeakMemoryFlatness:
    """Peak allocation must not grow with trace length in windowed mode."""

    def collector_peak(self, n):
        ios = make_ios(n)
        collector = MetricsCollector(history="windowed", window=256)
        # Normalise cyclic-GC state before tracing: where the collection
        # thresholds fall inside the loop depends on how many allocations
        # earlier tests made, and a mid-loop pass shifts the traced peak by
        # more than the flatness margin.
        gc.collect()
        tracemalloc.start()
        tracemalloc.reset_peak()
        for i, io in enumerate(ios):
            collector.on_io_arrival(io)
            collector.on_io_complete(io, io.arrival_ns + 50_000 + (i % 7) * 1_000)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak

    def test_windowed_collector_peak_flat_at_10x(self):
        short = self.collector_peak(2_000)
        long = self.collector_peak(20_000)
        assert long < short * 1.10, (
            f"windowed collector peak grew {long / short - 1:.1%} "
            f"for a 10x-longer completion stream"
        )

    def sim_peak(self, n, history):
        # figure06-style replay: random mixed I/O over a small, GC-active
        # device.  The workload is built (and sized) outside the traced
        # region - the measurement is the event loop's own allocations.
        workload = generate_random_workload(
            num_requests=n,
            size_bytes=16 * KB,
            address_space_bytes=1024 * KB,
            read_fraction=0.5,
            interarrival_ns=2_000,
            seed=11,
        )
        simulator = SSDSimulator(
            SimulationConfig.small(gc_enabled=True),
            "SPK3",
            metrics_history=history,
            metrics_window=256,
        )
        tracemalloc.start()
        tracemalloc.reset_peak()
        simulator.run(workload)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak

    def test_windowed_run_memory_flat_relative_to_full(self):
        # A 10x-longer replay in full-history mode grows by the retained
        # history; in windowed mode the only in-run O(n) allocations left
        # are the completion timestamps stamped onto the caller's own
        # request objects.  Windowed growth must be a small fraction of
        # full-history growth, and the long windowed run must peak well
        # below the long full-history run.
        short_full = self.sim_peak(400, "full")
        long_full = self.sim_peak(4_000, "full")
        short_windowed = self.sim_peak(400, "windowed")
        long_windowed = self.sim_peak(4_000, "windowed")
        full_growth = long_full - short_full
        windowed_growth = long_windowed - short_windowed
        assert full_growth > 0, "full-history growth should be measurable"
        assert windowed_growth < full_growth / 3, (
            f"windowed growth {windowed_growth} vs full growth {full_growth}"
        )
        assert long_windowed < long_full * 0.6
