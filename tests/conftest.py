"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.flash.chip import FlashChip
from repro.flash.geometry import SSDGeometry
from repro.flash.timing import FlashTiming
from repro.flash.transaction import TransactionBuilder
from repro.sim.config import SimulationConfig


@pytest.fixture
def small_geometry() -> SSDGeometry:
    """A tiny SSD: 2 channels x 2 chips, 2 dies x 2 planes, small blocks."""
    return SSDGeometry(
        num_channels=2,
        chips_per_channel=2,
        dies_per_chip=2,
        planes_per_die=2,
        blocks_per_plane=8,
        pages_per_block=16,
        page_size_bytes=2048,
    )


@pytest.fixture
def timing() -> FlashTiming:
    """Default paper timing."""
    return FlashTiming()


@pytest.fixture
def fast_timing() -> FlashTiming:
    """Deterministic, simple timing for arithmetic-friendly assertions."""
    return FlashTiming(
        read_ns=20_000,
        program_fast_ns=200_000,
        program_slow_ns=200_000,
        erase_ns=1_000_000,
        bus_bytes_per_sec=200_000_000,
        command_overhead_ns=100,
        transaction_overhead_ns=200,
    )


@pytest.fixture
def small_chips(small_geometry):
    """FlashChip objects for every chip of the small geometry."""
    return {key: FlashChip(key, small_geometry) for key in small_geometry.iter_chip_keys()}


@pytest.fixture
def builder(small_geometry, fast_timing) -> TransactionBuilder:
    """Transaction builder over the small geometry with simple timing."""
    return TransactionBuilder(small_geometry, fast_timing)


@pytest.fixture
def small_config(small_geometry) -> SimulationConfig:
    """Simulation config over the small geometry, GC disabled."""
    return SimulationConfig(geometry=small_geometry, gc_enabled=False)


@pytest.fixture
def test_config() -> SimulationConfig:
    """The packaged small config (8 chips), GC disabled for determinism."""
    return SimulationConfig.small(gc_enabled=False)
