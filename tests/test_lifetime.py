"""Tests for the device aging & steady-state subsystem (repro.lifetime)."""

from __future__ import annotations

import pickle
import random

import pytest

from repro.experiments.engine import ExecutionEngine
from repro.experiments.spec import SimJob, WorkloadSpec
from repro.flash.chip import FlashChip
from repro.ftl.garbage_collector import GarbageCollector
from repro.ftl.mapping import PageMapFTL
from repro.lifetime import (
    DeviceState,
    age_to_steady_state,
    apply_device_state,
    device_state_workload,
    occupancy_fingerprint,
    occupancy_snapshot,
    replay_device_state,
)
from repro.sim.config import SimulationConfig
from repro.sim.ssd import SSDSimulator
from repro.workloads.request import reset_io_ids
from repro.workloads.synthetic import generate_random_workload

KB = 1024


def fresh_ftl(geometry):
    chips = {key: FlashChip(key, geometry) for key in geometry.iter_chip_keys()}
    return PageMapFTL(geometry, chips)


def aged_config(**overrides):
    """Small config with a canned aged device state (no steady aging)."""
    state = overrides.pop(
        "state", DeviceState(fill_fraction=0.85, invalid_fraction=0.3, seed=7)
    )
    return SimulationConfig.small(device_state=state, **overrides)


def small_write_workload(seed=3, num_requests=48):
    reset_io_ids()
    return generate_random_workload(
        num_requests,
        16 * KB,
        read_fraction=0.2,
        address_space_bytes=8 * 1024 * KB,
        seed=seed,
    )


# ======================================================================
# DeviceState spec
# ======================================================================
class TestDeviceState:
    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceState(fill_fraction=1.5)
        with pytest.raises(ValueError):
            DeviceState(invalid_fraction=1.0)
        with pytest.raises(ValueError):
            DeviceState(hot_fraction=-0.1)
        with pytest.raises(ValueError):
            DeviceState(hot_write_share=2.0)
        with pytest.raises(ValueError):
            DeviceState(steady_tolerance=0.0)
        with pytest.raises(ValueError):
            DeviceState(steady_max_passes=0)
        with pytest.raises(ValueError):
            DeviceState(steady_pass_fraction=0.0)

    def test_fingerprint_stable_and_sensitive(self):
        a = DeviceState(fill_fraction=0.9, seed=1)
        assert a.fingerprint() == DeviceState(fill_fraction=0.9, seed=1).fingerprint()
        assert a.fingerprint() != DeviceState(fill_fraction=0.8, seed=1).fingerprint()
        assert a.fingerprint() != DeviceState(fill_fraction=0.9, seed=2).fingerprint()
        assert (
            a.fingerprint()
            != DeviceState(fill_fraction=0.9, seed=1, steady_state=True).fingerprint()
        )

    def test_version_rides_every_fingerprint(self):
        """LIFETIME_VERSION is a DeviceState field, so it reaches the
        canonical form of any config embedding the state - bumping it
        must invalidate engine-cached aged results."""
        from repro.lifetime import LIFETIME_VERSION
        from repro.sim.config import canonicalize

        state = DeviceState()
        assert state.version == LIFETIME_VERSION
        assert ("version", LIFETIME_VERSION) in canonicalize(state)
        config_form = repr(canonicalize(SimulationConfig.small(device_state=state)))
        assert f"('version', {LIFETIME_VERSION})" in config_form

    def test_precondition_plan_arithmetic(self, small_geometry):
        state = DeviceState(fill_fraction=0.5, invalid_fraction=0.2)
        logical = small_geometry.total_pages
        live, overwrites = state.precondition_plan(small_geometry, logical)
        assert live == int(logical * 0.5)
        # invalid / programmed ~= invalid_fraction
        assert overwrites / (live + overwrites) == pytest.approx(0.2, abs=0.01)

    def test_precondition_plan_leaves_gc_headroom(self, small_geometry):
        # Overwrite demand (0.8 / 0.55 of capacity) far exceeds what fits;
        # the plan clamps it so a block per plane stays erased for GC.
        state = DeviceState(fill_fraction=0.8, invalid_fraction=0.45)
        live, overwrites = state.precondition_plan(
            small_geometry, small_geometry.total_pages
        )
        headroom = small_geometry.num_planes * small_geometry.pages_per_block
        assert overwrites > 0
        assert live + overwrites == small_geometry.total_pages - headroom

    def test_zero_fill_is_noop(self, small_geometry):
        state = DeviceState(fill_fraction=0.0)
        ftl = fresh_ftl(small_geometry)
        report = apply_device_state(
            ftl, state, logical_pages=small_geometry.total_pages
        )
        assert report.page_writes == 0
        assert ftl.mapped_pages == 0

    def test_config_rejects_prefill_plus_device_state(self):
        with pytest.raises(ValueError):
            SimulationConfig.small(prefill_fraction=0.5, device_state=DeviceState())

    def test_config_rejects_steady_without_gc(self):
        with pytest.raises(ValueError):
            SimulationConfig.small(
                gc_enabled=False, device_state=DeviceState(steady_state=True)
            )

    def test_config_logical_pages_reflects_overprovisioning(self):
        config = SimulationConfig.small(overprovisioning_fraction=0.25)
        assert config.logical_pages == int(config.geometry.total_pages * 0.75)
        with pytest.raises(ValueError):
            SimulationConfig.small(overprovisioning_fraction=1.0)


# ======================================================================
# Fast-forward identity (the tentpole invariant)
# ======================================================================
class TestFastForwardIdentity:
    STATE = DeviceState(fill_fraction=0.8, invalid_fraction=0.3, seed=7)

    def test_fast_forward_matches_replay(self, small_geometry):
        fast = fresh_ftl(small_geometry)
        slow = fresh_ftl(small_geometry)
        r1 = apply_device_state(fast, self.STATE, logical_pages=small_geometry.total_pages)
        r2 = replay_device_state(slow, self.STATE, logical_pages=small_geometry.total_pages)
        assert r1 == r2
        assert occupancy_snapshot(fast) == occupancy_snapshot(slow)
        assert occupancy_fingerprint(fast) == occupancy_fingerprint(slow)
        assert fast.stats == slow.stats

    def test_fast_forward_matches_event_simulation(self):
        config = SimulationConfig.small(gc_enabled=False)
        fast = fresh_ftl(config.geometry)
        apply_device_state(fast, self.STATE, logical_pages=config.logical_pages)
        simulator = SSDSimulator(config, "SPK3")
        workload = device_state_workload(
            self.STATE, config.geometry, logical_pages=config.logical_pages
        )
        simulator.run(workload, workload_name="precondition")
        assert occupancy_fingerprint(simulator.ftl) == occupancy_fingerprint(fast)

    def test_different_seeds_diverge(self, small_geometry):
        a = fresh_ftl(small_geometry)
        b = fresh_ftl(small_geometry)
        apply_device_state(
            a,
            DeviceState(fill_fraction=0.8, invalid_fraction=0.3, seed=1),
            logical_pages=small_geometry.total_pages,
        )
        apply_device_state(
            b,
            DeviceState(fill_fraction=0.8, invalid_fraction=0.3, seed=2),
            logical_pages=small_geometry.total_pages,
        )
        assert occupancy_fingerprint(a) != occupancy_fingerprint(b)

    def test_requires_pristine_device(self, small_geometry):
        ftl = fresh_ftl(small_geometry)
        ftl.translate_write(0)
        with pytest.raises(ValueError):
            apply_device_state(
                ftl, self.STATE, logical_pages=small_geometry.total_pages
            )

    def test_achieved_fractions(self, small_geometry):
        ftl = fresh_ftl(small_geometry)
        report = apply_device_state(
            ftl, self.STATE, logical_pages=small_geometry.total_pages
        )
        assert ftl.utilization() == pytest.approx(0.8, abs=0.01)
        programmed = sum(
            block.write_pointer
            for chip in ftl.chips.values()
            for plane in chip.iter_planes()
            for block in plane.blocks
        )
        assert programmed == report.page_writes
        invalid = programmed - ftl.mapped_pages
        assert invalid == report.overwrites

    def test_hot_skew_concentrates_overwrites(self, small_geometry):
        state = DeviceState(
            fill_fraction=0.7,
            invalid_fraction=0.3,
            hot_fraction=0.2,
            hot_write_share=0.9,
            seed=5,
        )
        ftl = fresh_ftl(small_geometry)
        report = apply_device_state(ftl, state, logical_pages=small_geometry.total_pages)
        assert report.overwrites > 0
        # The hot set (first 20% of live LPNs) received ~90% of overwrites:
        # count invalid pages in the blocks the base pass put the hot set in.
        assert ftl.stats.invalidations == report.overwrites

    def test_overprovisioning_shrinks_live_space(self, small_geometry):
        state = DeviceState(fill_fraction=0.9, invalid_fraction=0.2, seed=3)
        full = fresh_ftl(small_geometry)
        reserved = fresh_ftl(small_geometry)
        total = small_geometry.total_pages
        r_full = apply_device_state(full, state, logical_pages=total)
        r_reserved = apply_device_state(
            reserved, state, logical_pages=int(total * 0.75)
        )
        assert r_reserved.live_pages < r_full.live_pages
        assert r_reserved.live_pages == int(int(total * 0.75) * 0.9)


# ======================================================================
# Steady-state aging driver
# ======================================================================
class TestSteadyStateAging:
    def test_converges_and_reports(self, small_geometry, fast_timing):
        state = DeviceState(
            fill_fraction=0.85, invalid_fraction=0.3, seed=7, steady_state=True
        )
        ftl = fresh_ftl(small_geometry)
        gc = GarbageCollector(small_geometry, fast_timing, ftl, ftl.chips)
        rng = random.Random(state.seed)
        report_fill = apply_device_state(
            ftl, state, logical_pages=small_geometry.total_pages, rng=rng
        )
        report = age_to_steady_state(
            ftl, gc, state, live_pages=report_fill.live_pages, rng=rng
        )
        assert report.passes >= 1
        assert report.write_amplification >= 1.0
        assert report.gc_invocations > 0
        assert len(report.wa_history) == report.passes
        assert gc.stats.orphaned_pages == 0
        # Live data is preserved: every live LPN still resolves.
        assert ftl.mapped_pages == report_fill.live_pages

    def test_deterministic(self, small_geometry, fast_timing):
        state = DeviceState(
            fill_fraction=0.85, invalid_fraction=0.3, seed=9, steady_state=True
        )

        def run():
            ftl = fresh_ftl(small_geometry)
            gc = GarbageCollector(small_geometry, fast_timing, ftl, ftl.chips)
            rng = random.Random(state.seed)
            fill = apply_device_state(
                ftl, state, logical_pages=small_geometry.total_pages, rng=rng
            )
            report = age_to_steady_state(
                ftl, gc, state, live_pages=fill.live_pages, rng=rng
            )
            return report, occupancy_fingerprint(ftl), list(gc.history)

        first, second = run(), run()
        assert first[0] == second[0]
        assert first[1] == second[1]
        assert first[2] == second[2] and first[2]

    def test_requires_enabled_gc(self, small_geometry, fast_timing):
        state = DeviceState(steady_state=True)
        ftl = fresh_ftl(small_geometry)
        gc = GarbageCollector(
            small_geometry, fast_timing, ftl, ftl.chips, enabled=False
        )
        with pytest.raises(ValueError):
            age_to_steady_state(ftl, gc, state, live_pages=100)

    def test_wear_accumulates(self, small_geometry, fast_timing):
        from repro.ftl.wear_leveling import wear_stats

        state = DeviceState(
            fill_fraction=0.85, invalid_fraction=0.3, seed=7, steady_state=True
        )
        ftl = fresh_ftl(small_geometry)
        gc = GarbageCollector(small_geometry, fast_timing, ftl, ftl.chips)
        rng = random.Random(state.seed)
        fill = apply_device_state(
            ftl, state, logical_pages=small_geometry.total_pages, rng=rng
        )
        age_to_steady_state(ftl, gc, state, live_pages=fill.live_pages, rng=rng)
        wear = wear_stats(ftl.chips)
        assert wear.total_erases == gc.stats.blocks_erased
        assert wear.max_erase_count >= 1


# ======================================================================
# Simulator integration
# ======================================================================
class TestSimulatorIntegration:
    def test_result_carries_lifetime_fields(self):
        simulator = SSDSimulator(aged_config(), "SPK3")
        result = simulator.run(small_write_workload(), workload_name="aged")
        assert result.lifetime is not None
        assert result.gc_stats is not None
        assert result.wear is not None
        assert result.lifetime.precondition_writes > 0
        assert result.lifetime.host_writes > 0
        assert result.write_amplification > 1.0
        assert result.lifetime.flash_writes == (
            result.lifetime.host_writes + result.lifetime.pages_relocated
        )
        assert result.gc_stats.orphaned_pages == 0

    def test_fresh_device_reports_unit_wa(self, test_config):
        simulator = SSDSimulator(test_config, "SPK3")
        result = simulator.run(small_write_workload(), workload_name="fresh")
        assert result.write_amplification == 1.0
        assert result.gc_stats.invocations == 0
        assert result.wear.total_erases == 0
        assert result.lifetime.precondition_writes == 0

    def test_run_counters_exclude_preconditioning(self):
        config = aged_config()
        simulator = SSDSimulator(config, "SPK3")
        pre_gc = simulator.gc.stats.invocations
        result = simulator.run(small_write_workload(), workload_name="aged")
        # The run-scoped GC stats must not include aging-time collections.
        assert result.gc_stats.invocations == simulator.gc.stats.invocations - pre_gc
        assert result.lifetime.host_writes < result.lifetime.precondition_writes

    def test_steady_state_rides_into_result(self):
        state = DeviceState(
            fill_fraction=0.85, invalid_fraction=0.3, seed=7, steady_state=True
        )
        simulator = SSDSimulator(aged_config(state=state), "SPK3")
        result = simulator.run(small_write_workload(), workload_name="steady")
        assert result.lifetime.steady_state_passes >= 1
        assert result.lifetime.steady_state_wa >= 1.0

    def test_gc_job_sequence_identical_across_seeded_runs(self):
        config = aged_config()

        def run():
            simulator = SSDSimulator(config, "SPK3")
            result = simulator.run(small_write_workload(), workload_name="aged")
            return list(simulator.gc.history), result

        history_a, result_a = run()
        history_b, result_b = run()
        assert history_a, "aged run is expected to trigger garbage collection"
        assert history_a == history_b
        assert result_a == result_b


# ======================================================================
# Engine integration (fingerprints, cache, process backend)
# ======================================================================
class TestEngineIntegration:
    def job(self, state=None, op=0.0, seed=3):
        workload = WorkloadSpec.random(
            "lifetime-writes",
            num_requests=24,
            size_bytes=16 * KB,
            read_fraction=0.0,
            address_space_bytes=4 * 1024 * KB,
            seed=seed,
        )
        config = SimulationConfig.small(
            device_state=state, overprovisioning_fraction=op
        )
        return SimJob(workload=workload, scheduler="SPK3", config=config, key=("cell",))

    def test_device_state_changes_fingerprint(self):
        fresh = self.job()
        aged = self.job(state=DeviceState(seed=1))
        aged_other_seed = self.job(state=DeviceState(seed=2))
        op = self.job(op=0.2)
        fingerprints = {
            fresh.fingerprint(),
            aged.fingerprint(),
            aged_other_seed.fingerprint(),
            op.fingerprint(),
        }
        assert len(fingerprints) == 4

    def test_serial_process_identity_and_cache_hit(self, tmp_path):
        jobs = [
            self.job(state=DeviceState(fill_fraction=0.85, invalid_fraction=0.3, seed=1)),
            self.job(
                state=DeviceState(
                    fill_fraction=0.85, invalid_fraction=0.3, seed=1, steady_state=True
                )
            ),
        ]
        jobs[1] = SimJob(
            workload=jobs[1].workload,
            scheduler=jobs[1].scheduler,
            config=jobs[1].config,
            key=("steady",),
        )
        serial = ExecutionEngine("serial").run_jobs(jobs)
        parallel = ExecutionEngine("process", max_workers=2).run_jobs(jobs)
        for left, right in zip(serial, parallel):
            assert pickle.dumps(left) == pickle.dumps(right)

        cached_engine = ExecutionEngine("serial", cache_dir=tmp_path / "cache")
        first = cached_engine.run_jobs(jobs)
        assert cached_engine.stats.jobs_executed == len(jobs)
        rerun_engine = ExecutionEngine("serial", cache_dir=tmp_path / "cache")
        second = rerun_engine.run_jobs(jobs)
        assert rerun_engine.stats.cache_hits == len(jobs)
        assert rerun_engine.stats.jobs_executed == 0
        for left, right in zip(first, second):
            assert pickle.dumps(left) == pickle.dumps(right)
