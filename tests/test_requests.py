"""Tests for host I/O requests and flash memory requests."""

import pytest

from repro.flash.commands import FlashOp
from repro.flash.geometry import PhysicalPageAddress
from repro.flash.request import MemoryRequest, reset_memory_request_ids
from repro.workloads.request import IOKind, IORequest, reset_io_ids


def make_address(**overrides):
    values = dict(channel=0, chip=1, die=0, plane=1, block=2, page=3)
    values.update(overrides)
    return PhysicalPageAddress(**values)


class TestIORequest:
    def test_basic_properties(self):
        io = IORequest(kind=IOKind.WRITE, offset_bytes=4096, size_bytes=8192, arrival_ns=10)
        assert io.is_write
        assert io.end_offset_bytes == 12288

    def test_read_is_not_write(self):
        io = IORequest(kind=IOKind.READ, offset_bytes=0, size_bytes=1, arrival_ns=0)
        assert not io.is_write

    def test_num_pages_aligned(self):
        io = IORequest(kind=IOKind.READ, offset_bytes=0, size_bytes=8192, arrival_ns=0)
        assert io.num_pages(2048) == 4

    def test_num_pages_unaligned_offset(self):
        io = IORequest(kind=IOKind.READ, offset_bytes=1024, size_bytes=2048, arrival_ns=0)
        # Crosses a page boundary: touches pages 0 and 1.
        assert io.num_pages(2048) == 2

    def test_logical_pages_range(self):
        io = IORequest(kind=IOKind.READ, offset_bytes=4096, size_bytes=4096, arrival_ns=0)
        assert list(io.logical_pages(2048)) == [2, 3]

    def test_num_pages_requires_positive_page_size(self):
        io = IORequest(kind=IOKind.READ, offset_bytes=0, size_bytes=1, arrival_ns=0)
        with pytest.raises(ValueError):
            io.num_pages(0)

    def test_latency_none_until_completed(self):
        io = IORequest(kind=IOKind.READ, offset_bytes=0, size_bytes=1, arrival_ns=100)
        assert io.latency_ns is None
        io.completed_at_ns = 600
        assert io.latency_ns == 500

    def test_queue_latency(self):
        io = IORequest(kind=IOKind.READ, offset_bytes=0, size_bytes=1, arrival_ns=100)
        assert io.queue_latency_ns is None
        io.enqueued_at_ns = 250
        assert io.queue_latency_ns == 150

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(offset_bytes=-1, size_bytes=1, arrival_ns=0),
            dict(offset_bytes=0, size_bytes=0, arrival_ns=0),
            dict(offset_bytes=0, size_bytes=1, arrival_ns=-5),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            IORequest(kind=IOKind.READ, **kwargs)

    def test_ids_increase(self):
        reset_io_ids()
        first = IORequest(kind=IOKind.READ, offset_bytes=0, size_bytes=1, arrival_ns=0)
        second = IORequest(kind=IOKind.READ, offset_bytes=0, size_bytes=1, arrival_ns=0)
        assert second.io_id == first.io_id + 1


class TestMemoryRequest:
    def test_chip_key_requires_translation(self):
        request = MemoryRequest(io_id=1, op=FlashOp.READ, lpn=0, size_bytes=2048)
        assert not request.is_translated
        with pytest.raises(ValueError):
            _ = request.chip_key

    def test_chip_key_after_translation(self):
        request = MemoryRequest(
            io_id=1, op=FlashOp.READ, lpn=0, size_bytes=2048, address=make_address()
        )
        assert request.chip_key == (0, 1)
        assert request.is_translated

    def test_retarget_changes_address(self):
        request = MemoryRequest(
            io_id=1, op=FlashOp.PROGRAM, lpn=5, size_bytes=2048, address=make_address()
        )
        new_address = make_address(chip=0, die=1)
        request.retarget(new_address)
        assert request.address == new_address

    def test_completion_flag(self):
        request = MemoryRequest(io_id=1, op=FlashOp.READ, lpn=0, size_bytes=2048)
        assert not request.is_completed
        request.completed_at_ns = 42
        assert request.is_completed

    def test_default_penalty_zero(self):
        request = MemoryRequest(io_id=1, op=FlashOp.READ, lpn=0, size_bytes=2048)
        assert request.penalty_ns == 0

    @pytest.mark.parametrize("kwargs", [dict(lpn=-1, size_bytes=2048), dict(lpn=0, size_bytes=0)])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            MemoryRequest(io_id=1, op=FlashOp.READ, **kwargs)

    def test_ids_increase(self):
        reset_memory_request_ids()
        first = MemoryRequest(io_id=1, op=FlashOp.READ, lpn=0, size_bytes=2048)
        second = MemoryRequest(io_id=1, op=FlashOp.READ, lpn=1, size_bytes=2048)
        assert second.request_id == first.request_id + 1
