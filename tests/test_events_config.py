"""Tests for the event queue and simulation configuration."""

import pytest

from repro.flash.geometry import SSDGeometry
from repro.sim.config import SimulationConfig
from repro.sim.events import Event, EventKind, EventQueue


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(50, EventKind.IO_ARRIVAL, "b")
        queue.push(10, EventKind.IO_ARRIVAL, "a")
        queue.push(30, EventKind.IO_ARRIVAL, "c")
        assert [queue.pop().payload for _ in range(3)] == ["a", "c", "b"]

    def test_ties_broken_by_insertion_order(self):
        queue = EventQueue()
        queue.push(10, EventKind.IO_ARRIVAL, "first")
        queue.push(10, EventKind.COMPOSE_DONE, "second")
        assert queue.pop().payload == "first"
        assert queue.pop().payload == "second"

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(42, EventKind.IO_ARRIVAL)
        assert queue.peek_time() == 42

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue
        queue.push(1, EventKind.IO_ARRIVAL)
        assert queue
        assert len(queue) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1, EventKind.IO_ARRIVAL)

    def test_processed_counter(self):
        queue = EventQueue()
        queue.push(1, EventKind.IO_ARRIVAL)
        queue.pop()
        assert queue.processed == 1

    def test_event_ordering_dataclass(self):
        early = Event(time_ns=1, sequence=0, kind=EventKind.IO_ARRIVAL)
        late = Event(time_ns=2, sequence=0, kind=EventKind.IO_ARRIVAL)
        assert early < late


class TestSimulationConfig:
    def test_defaults_valid(self):
        config = SimulationConfig()
        assert config.queue_depth == 64
        assert config.geometry.num_chips == 64

    def test_small_profile(self):
        config = SimulationConfig.small()
        assert config.geometry.num_chips == 8

    def test_paper_scale_chip_counts(self):
        assert SimulationConfig.paper_scale(64).geometry.num_chips == 64
        assert SimulationConfig.paper_scale(256).geometry.num_chips == 256
        assert SimulationConfig.paper_scale(1024).geometry.num_chips == 1024

    def test_paper_scale_channel_split(self):
        assert SimulationConfig.paper_scale(64).geometry.num_channels == 8
        assert SimulationConfig.paper_scale(1024).geometry.num_channels == 32

    def test_paper_scale_rejects_bad_count(self):
        with pytest.raises(ValueError):
            SimulationConfig.paper_scale(60)

    def test_with_overrides_returns_copy(self):
        config = SimulationConfig()
        other = config.with_overrides(queue_depth=8)
        assert other.queue_depth == 8
        assert config.queue_depth == 64

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(queue_depth=0),
            dict(compose_ns=-1),
            dict(decision_window_ns=-1),
            dict(prefill_fraction=1.0),
            dict(prefill_overwrite_fraction=1.0),
            dict(stale_penalty_ns=-1),
        ],
    )
    def test_validation(self, overrides):
        with pytest.raises(ValueError):
            SimulationConfig(**overrides)

    def test_custom_geometry(self):
        geometry = SSDGeometry(num_channels=2, chips_per_channel=2)
        config = SimulationConfig(geometry=geometry)
        assert config.geometry.num_chips == 4
