"""Tests for the event queue and simulation configuration."""

import pytest

from repro.flash.geometry import SSDGeometry
from repro.sim.config import SimulationConfig
from repro.sim.events import Event, EventKind, EventQueue


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(50, EventKind.IO_ARRIVAL, "b")
        queue.push(10, EventKind.IO_ARRIVAL, "a")
        queue.push(30, EventKind.IO_ARRIVAL, "c")
        assert [queue.pop().payload for _ in range(3)] == ["a", "c", "b"]

    def test_ties_broken_by_insertion_order(self):
        queue = EventQueue()
        queue.push(10, EventKind.IO_ARRIVAL, "first")
        queue.push(10, EventKind.COMPOSE_DONE, "second")
        assert queue.pop().payload == "first"
        assert queue.pop().payload == "second"

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(42, EventKind.IO_ARRIVAL)
        assert queue.peek_time() == 42

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue
        queue.push(1, EventKind.IO_ARRIVAL)
        assert queue
        assert len(queue) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1, EventKind.IO_ARRIVAL)

    def test_processed_counter(self):
        queue = EventQueue()
        queue.push(1, EventKind.IO_ARRIVAL)
        queue.pop()
        assert queue.processed == 1

    def test_event_ordering_dataclass(self):
        early = Event(time_ns=1, sequence=0, kind=EventKind.IO_ARRIVAL)
        late = Event(time_ns=2, sequence=0, kind=EventKind.IO_ARRIVAL)
        assert early < late

    def test_push_returns_nothing(self):
        # Regression: push used to leak the raw heap tuple, and callers
        # compared it against drained entries - an internal representation
        # that is free to change.  Scheduling is fire-and-forget.
        queue = EventQueue()
        assert queue.push(5, EventKind.IO_ARRIVAL, "p") is None


class TestEventQueueBatching:
    """pop_batch / drain_batch semantics, including re-entrant pushes."""

    def test_pop_batch_groups_same_timestamp(self):
        queue = EventQueue()
        queue.push(20, EventKind.IO_ARRIVAL, "late")
        queue.push(10, EventKind.IO_ARRIVAL, "a")
        queue.push(10, EventKind.COMPOSE_DONE, "b")
        time_ns, batch = queue.pop_batch()
        assert time_ns == 10
        assert [entry[3] for entry in batch] == ["a", "b"]
        assert queue.processed == 2
        time_ns, batch = queue.pop_batch()
        assert time_ns == 20
        assert [entry[3] for entry in batch] == ["late"]
        assert queue.processed == 3

    def test_pop_batch_empty_returns_none(self):
        queue = EventQueue()
        assert queue.pop_batch() is None
        queue.push(1, EventKind.IO_ARRIVAL)
        queue.pop_batch()
        assert queue.pop_batch() is None
        assert queue.processed == 1

    def test_drain_batch_matches_drain_order(self):
        def load(queue):
            for time_ns, payload in [(5, "a"), (1, "b"), (5, "c"), (3, "d"), (1, "e")]:
                queue.push(time_ns, EventKind.IO_ARRIVAL, payload)

        plain, batched = EventQueue(), EventQueue()
        load(plain)
        load(batched)
        flat_order = [entry[3] for entry in plain.drain()]
        batch_order = [
            entry[3] for _, batch in batched.drain_batch() for entry in batch
        ]
        assert batch_order == flat_order == ["b", "e", "d", "a", "c"]
        assert batched.processed == plain.processed == 5

    def test_same_timestamp_push_mid_batch_lands_in_next_batch(self):
        # The re-entrancy contract: a handler pushing at the current batch
        # timestamp must see its event in the NEXT batch - exactly where
        # per-event drain() would have processed it (sequences are
        # monotonic, so it sorts after everything already handed out).
        queue = EventQueue()
        queue.push(10, EventKind.IO_ARRIVAL, "first")
        steps = []
        for time_ns, batch in queue.drain_batch():
            steps.append((time_ns, [entry[3] for entry in batch]))
            if len(steps) == 1:
                queue.push(10, EventKind.COMPOSE_DONE, "re-entrant")
        assert steps == [(10, ["first"]), (10, ["re-entrant"])]
        assert queue.processed == 2

    def test_future_push_mid_drain_is_seen(self):
        queue = EventQueue()
        queue.push(1, EventKind.IO_ARRIVAL, "seed")
        seen = []
        for time_ns, batch in queue.drain_batch():
            for entry in batch:
                seen.append(entry[3])
                if entry[3] == "seed":
                    queue.push(time_ns + 4, EventKind.TRANSACTION_DONE, "chained")
        assert seen == ["seed", "chained"]

    def test_past_push_mid_batch_is_processed_late(self):
        # Scheduling into the past is a contract violation; the queue does
        # not lose the event, but it is handed out after the current batch,
        # i.e. out of timestamp order.  This pins the documented behaviour.
        queue = EventQueue()
        queue.push(10, EventKind.IO_ARRIVAL, "now")
        steps = []
        for time_ns, batch in queue.drain_batch():
            steps.append((time_ns, [entry[3] for entry in batch]))
            if len(steps) == 1:
                queue.push(3, EventKind.IO_ARRIVAL, "past")
        assert steps == [(10, ["now"]), (3, ["past"])]

    def test_generators_restart_after_exhaustion(self):
        # Draining to empty ends the generator; a fresh drain()/drain_batch()
        # call on the same queue picks up events pushed afterwards, and the
        # processed counter keeps accumulating across restarts.
        queue = EventQueue()
        queue.push(1, EventKind.IO_ARRIVAL, "a")
        assert [entry[3] for entry in queue.drain()] == ["a"]
        assert queue.pop_batch() is None
        queue.push(2, EventKind.IO_ARRIVAL, "b")
        queue.push(2, EventKind.IO_ARRIVAL, "c")
        assert [
            entry[3] for _, batch in queue.drain_batch() for entry in batch
        ] == ["b", "c"]
        assert queue.processed == 3

    def test_processed_counts_batches_and_singles_consistently(self):
        queue = EventQueue()
        for time_ns in (1, 1, 2, 3, 3, 3):
            queue.push(time_ns, EventKind.IO_ARRIVAL)
        queue.pop()  # one event
        queue.pop_batch()  # remainder of the t=1 batch
        for _ in queue.drain_batch():  # t=2 and t=3 batches
            pass
        assert queue.processed == 6
        assert len(queue) == 0


class TestSimulationConfig:
    def test_defaults_valid(self):
        config = SimulationConfig()
        assert config.queue_depth == 64
        assert config.geometry.num_chips == 64

    def test_small_profile(self):
        config = SimulationConfig.small()
        assert config.geometry.num_chips == 8

    def test_paper_scale_chip_counts(self):
        assert SimulationConfig.paper_scale(64).geometry.num_chips == 64
        assert SimulationConfig.paper_scale(256).geometry.num_chips == 256
        assert SimulationConfig.paper_scale(1024).geometry.num_chips == 1024

    def test_paper_scale_channel_split(self):
        assert SimulationConfig.paper_scale(64).geometry.num_channels == 8
        assert SimulationConfig.paper_scale(1024).geometry.num_channels == 32

    def test_paper_scale_rejects_bad_count(self):
        with pytest.raises(ValueError):
            SimulationConfig.paper_scale(60)

    def test_with_overrides_returns_copy(self):
        config = SimulationConfig()
        other = config.with_overrides(queue_depth=8)
        assert other.queue_depth == 8
        assert config.queue_depth == 64

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(queue_depth=0),
            dict(compose_ns=-1),
            dict(decision_window_ns=-1),
            dict(prefill_fraction=1.0),
            dict(prefill_overwrite_fraction=1.0),
            dict(stale_penalty_ns=-1),
        ],
    )
    def test_validation(self, overrides):
        with pytest.raises(ValueError):
            SimulationConfig(**overrides)

    def test_custom_geometry(self):
        geometry = SSDGeometry(num_channels=2, chips_per_channel=2)
        config = SimulationConfig(geometry=geometry)
        assert config.geometry.num_chips == 4


class TestCanonicalizeSets:
    """Sets and frozensets must canonicalize deterministically.

    Device models carry ``tags`` as a frozenset; before PR 7,
    ``canonicalize`` rejected set types outright, and a naive
    ``tuple(the_set)`` would have made fingerprints depend on hash-iteration
    order - silently unstable across processes with randomized hashing.
    """

    def test_equal_sets_fingerprint_identically(self):
        from repro.sim.config import stable_fingerprint

        assert stable_fingerprint({"b", "a", "c"}) == stable_fingerprint({"c", "a", "b"})
        assert stable_fingerprint(frozenset({1, 2, 3})) == stable_fingerprint(
            frozenset({3, 2, 1})
        )

    def test_set_and_frozenset_are_interchangeable(self):
        from repro.sim.config import stable_fingerprint

        assert stable_fingerprint({"a", "b"}) == stable_fingerprint(frozenset({"a", "b"}))

    def test_canonical_form_is_sorted_and_tagged(self):
        from repro.sim.config import canonicalize

        assert canonicalize({"b", "a"}) == ("set", "a", "b")

    def test_set_differs_from_equivalent_tuple(self):
        from repro.sim.config import stable_fingerprint

        assert stable_fingerprint({"a", "b"}) != stable_fingerprint(("a", "b"))

    def test_golden_fingerprint_is_pinned(self):
        # Regression pin: this exact value must survive refactors, or every
        # cached result computed against a tagged device silently invalidates.
        from repro.sim.config import stable_fingerprint

        assert (
            stable_fingerprint(frozenset({"mlc", "gen2", "paper"}))
            == stable_fingerprint(frozenset({"paper", "gen2", "mlc"}))
            == "a272641355f0d3eae01fa487a2206afc2462a00d114d980e6d3bc3788ba54f39"
        )
