"""Docs stay truthful: links resolve, packages are documented."""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_check_links():
    path = REPO_ROOT / "tools" / "check_links.py"
    spec = importlib.util.spec_from_file_location("check_links", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules["check_links"] = module
    spec.loader.exec_module(module)
    return module


class TestLinkChecker:
    def test_repo_docs_have_no_broken_links(self, capsys):
        checker = _load_check_links()
        assert checker.check_links() == []

    def test_scans_readme_roadmap_and_docs(self):
        checker = _load_check_links()
        names = {path.name for path in checker.iter_doc_files()}
        assert {"README.md", "ROADMAP.md", "ARCHITECTURE.md", "OPERATIONS.md"} <= names

    def test_broken_relative_link_detected(self, tmp_path):
        checker = _load_check_links()
        doc = tmp_path / "README.md"
        doc.write_text("see [missing](docs/nope.md)\n", encoding="utf-8")
        problems = checker.check_links(tmp_path)
        assert len(problems) == 1
        assert "nope.md" in problems[0]

    @pytest.mark.parametrize(
        "target",
        ["https://example.com/x", "mailto:a@b.c", "#anchor", "../../outside/repo.md"],
    )
    def test_skipped_targets(self, tmp_path, target):
        checker = _load_check_links()
        doc = tmp_path / "README.md"
        doc.write_text(f"see [t]({target})\n", encoding="utf-8")
        assert checker.check_links(tmp_path) == []

    def test_existing_link_with_anchor_ok(self, tmp_path):
        checker = _load_check_links()
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "GUIDE.md").write_text("# hi\n", encoding="utf-8")
        doc = tmp_path / "README.md"
        doc.write_text("see [g](docs/GUIDE.md#hi)\n", encoding="utf-8")
        assert checker.check_links(tmp_path) == []


class TestDocsCoverage:
    def test_architecture_documents_every_package(self):
        text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(encoding="utf-8")
        packages = sorted(
            path.name
            for path in (REPO_ROOT / "src" / "repro").iterdir()
            if path.is_dir() and (path / "__init__.py").exists()
        )
        missing = [name for name in packages if f"repro.{name}" not in text]
        assert not missing, f"packages missing from ARCHITECTURE.md: {missing}"

    def test_readme_links_both_docs(self):
        text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert "docs/ARCHITECTURE.md" in text
        assert "docs/OPERATIONS.md" in text

    def test_operations_covers_the_operator_topics(self):
        text = (REPO_ROOT / "docs" / "OPERATIONS.md").read_text(encoding="utf-8")
        for topic in (
            "--cache-dir",
            "--checkpoint-dir",
            "--trace-dir",
            "--progress",
            "repro.perf",
            "SLO",
            "reconcil",
        ):
            assert topic in text, f"OPERATIONS.md missing {topic!r}"
