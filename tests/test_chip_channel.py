"""Tests for FlashChip and Channel resource models."""

import pytest

from repro.flash.channel import Channel
from repro.flash.chip import FlashChip


class TestFlashChip:
    def test_initial_state(self, small_geometry):
        chip = FlashChip((0, 0), small_geometry)
        assert not chip.is_busy(0)
        assert chip.free_pages == small_geometry.pages_per_chip
        assert chip.total_pages == small_geometry.pages_per_chip

    def test_plane_lookup(self, small_geometry):
        chip = FlashChip((1, 0), small_geometry)
        plane = chip.plane(1, 1)
        assert plane.plane_key == (1, 0, 1, 1)
        assert len(list(chip.iter_planes())) == small_geometry.planes_per_chip

    def test_occupy_sets_busy_until(self, small_geometry):
        chip = FlashChip((0, 0), small_geometry)
        chip.occupy(100, 500)
        assert chip.is_busy(300)
        assert not chip.is_busy(500)
        assert chip.stats.busy_time_ns == 400

    def test_occupy_accumulates(self, small_geometry):
        chip = FlashChip((0, 0), small_geometry)
        chip.occupy(0, 100)
        chip.occupy(200, 350)
        assert chip.stats.busy_time_ns == 250
        assert chip.busy_until == 350

    def test_occupy_rejects_negative_interval(self, small_geometry):
        chip = FlashChip((0, 0), small_geometry)
        with pytest.raises(ValueError):
            chip.occupy(100, 50)

    def test_utilization(self, small_geometry):
        chip = FlashChip((0, 0), small_geometry)
        chip.occupy(0, 500)
        assert chip.utilization(1000) == pytest.approx(0.5)
        assert chip.utilization(0) == 0.0

    def test_utilization_clamped_to_one(self, small_geometry):
        chip = FlashChip((0, 0), small_geometry)
        chip.occupy(0, 2000)
        assert chip.utilization(1000) == 1.0

    def test_record_transaction_and_intra_idleness(self, small_geometry):
        chip = FlashChip((0, 0), small_geometry)
        chip.occupy(0, 1000)
        # One die active for 500 out of 2 dies x 1000 busy time -> 75% intra idle.
        chip.record_transaction(
            num_requests=1,
            num_dies=1,
            cell_time_ns=500,
            bus_time_ns=100,
            bus_wait_ns=0,
            die_active_time_ns=500,
        )
        assert chip.stats.transactions == 1
        assert chip.stats.requests_served == 1
        assert chip.intra_chip_idleness() == pytest.approx(0.75)

    def test_intra_idleness_sentinel_when_never_busy(self, small_geometry):
        # -1.0 distinguishes "did no work" from a busy chip whose dies were
        # fully covered (a genuine 0.0); averaging layers exclude it.
        chip = FlashChip((0, 0), small_geometry)
        assert chip.intra_chip_idleness() == -1.0

    def test_gc_transaction_counter(self, small_geometry):
        chip = FlashChip((0, 0), small_geometry)
        chip.record_transaction(
            num_requests=1,
            num_dies=1,
            cell_time_ns=10,
            bus_time_ns=0,
            bus_wait_ns=0,
            die_active_time_ns=10,
            is_gc=True,
        )
        assert chip.stats.gc_transactions == 1


class TestChannel:
    def test_reserve_when_free(self):
        channel = Channel(0)
        start, end, wait = channel.reserve(100, 50)
        assert (start, end, wait) == (100, 150, 0)
        assert channel.free_at_ns == 150

    def test_reserve_waits_when_busy(self):
        channel = Channel(0)
        channel.reserve(0, 100)
        start, end, wait = channel.reserve(20, 50)
        assert start == 100
        assert wait == 80
        assert end == 150

    def test_contention_accumulates(self):
        channel = Channel(0)
        channel.reserve(0, 100)
        channel.reserve(0, 100)
        assert channel.stats.contention_time_ns == 100
        assert channel.stats.busy_time_ns == 200
        assert channel.stats.transfers == 2

    def test_bytes_tracked(self):
        channel = Channel(0)
        channel.reserve(0, 10, num_bytes=4096)
        assert channel.stats.bytes_moved == 4096

    def test_is_busy(self):
        channel = Channel(0)
        channel.reserve(0, 100)
        assert channel.is_busy(50)
        assert not channel.is_busy(100)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Channel(0).reserve(0, -1)

    def test_utilization(self):
        channel = Channel(0)
        channel.reserve(0, 250)
        assert channel.utilization(1000) == pytest.approx(0.25)
        assert channel.utilization(0) == 0.0
