"""Tests for Block and Plane bookkeeping."""

import pytest

from repro.flash.plane import Block, Plane


class TestBlock:
    def test_fresh_block_is_free(self):
        block = Block(0, 8)
        assert block.is_free
        assert not block.is_full
        assert block.valid_count == 0

    def test_program_next_marks_valid(self):
        block = Block(0, 4)
        page = block.program_next()
        assert page == 0
        assert block.is_valid(0)
        assert block.valid_count == 1
        assert not block.is_free

    def test_program_fills_sequentially(self):
        block = Block(0, 4)
        pages = [block.program_next() for _ in range(4)]
        assert pages == [0, 1, 2, 3]
        assert block.is_full

    def test_program_full_block_raises(self):
        block = Block(0, 2)
        block.program_next()
        block.program_next()
        with pytest.raises(RuntimeError):
            block.program_next()

    def test_invalidate(self):
        block = Block(0, 4)
        block.program_next()
        block.invalidate(0)
        assert not block.is_valid(0)
        assert block.invalid_count == 1

    def test_invalidate_out_of_range(self):
        with pytest.raises(ValueError):
            Block(0, 4).invalidate(4)

    def test_is_valid_out_of_range(self):
        with pytest.raises(ValueError):
            Block(0, 4).is_valid(9)

    def test_erase_resets_and_counts(self):
        block = Block(0, 4)
        for _ in range(4):
            block.program_next()
        block.erase()
        assert block.is_free
        assert block.valid_count == 0
        assert block.erase_count == 1

    def test_valid_list_view(self):
        block = Block(0, 4)
        block.program_next()
        block.program_next()
        block.invalidate(0)
        assert block.valid == [False, True, False, False]

    def test_mark_bad(self):
        block = Block(0, 4)
        block.mark_bad()
        assert block.is_bad


class TestPlane:
    def make_plane(self, blocks=4, pages=4):
        return Plane(plane_key=(0, 0, 0, 0), blocks_per_plane=blocks, pages_per_block=pages)

    def test_initial_capacity(self):
        plane = self.make_plane()
        assert plane.free_blocks == 4
        assert plane.free_pages == 16
        assert plane.valid_pages == 0

    def test_allocate_fills_block_before_rotating(self):
        plane = self.make_plane(blocks=2, pages=2)
        allocations = [plane.allocate_page() for _ in range(4)]
        assert allocations == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_allocate_exhaustion_raises(self):
        plane = self.make_plane(blocks=1, pages=2)
        plane.allocate_page()
        plane.allocate_page()
        with pytest.raises(RuntimeError):
            plane.allocate_page()

    def test_allocate_skips_bad_blocks(self):
        plane = self.make_plane(blocks=2, pages=1)
        plane.blocks[0].mark_bad()
        block_id, _ = plane.allocate_page()
        assert block_id == 1

    def test_free_pages_excludes_bad_blocks(self):
        plane = self.make_plane(blocks=2, pages=4)
        plane.blocks[0].mark_bad()
        assert plane.free_pages == 4
        assert plane.num_blocks == 1

    def test_victim_candidates_exclude_active_and_partial(self):
        plane = self.make_plane(blocks=3, pages=2)
        # Fill block 0 entirely, block 1 partially.
        plane.allocate_page()
        plane.allocate_page()
        plane.allocate_page()
        candidates = plane.victim_candidates()
        assert [block.block_id for block in candidates] == [0]

    def test_greedy_victim_picks_fewest_valid(self):
        plane = self.make_plane(blocks=3, pages=2)
        for _ in range(4):
            plane.allocate_page()
        # Invalidate both pages of block 1 and one page of block 0.
        plane.blocks[1].invalidate(0)
        plane.blocks[1].invalidate(1)
        plane.blocks[0].invalidate(0)
        # Move the active pointer off the full blocks.
        plane.allocate_page()
        victim = plane.greedy_victim()
        assert victim.block_id == 1

    def test_greedy_victim_none_when_nothing_full(self):
        plane = self.make_plane(blocks=2, pages=4)
        plane.allocate_page()
        assert plane.greedy_victim() is None
