"""Tests for the garbage collector."""

import pytest

from repro.ftl.garbage_collector import GarbageCollector
from repro.ftl.mapping import PageMapFTL


@pytest.fixture
def gc_setup(small_geometry, small_chips, fast_timing):
    ftl = PageMapFTL(small_geometry, small_chips)
    gc = GarbageCollector(
        small_geometry, fast_timing, ftl, small_chips, free_block_watermark=2
    )
    return ftl, gc


def fill_plane(ftl, small_geometry, chip_key, die, plane, blocks_to_fill):
    """Write LPNs until the given plane has ``blocks_to_fill`` full blocks."""
    written = []
    lpn = 10_000
    target_plane_key = (*chip_key, die, plane)
    while True:
        plane_obj = ftl.chips[chip_key].plane(die, plane)
        full = sum(1 for block in plane_obj.blocks if block.is_full)
        if full >= blocks_to_fill:
            break
        address = ftl.translate_write(lpn)
        if address.plane_key == target_plane_key:
            written.append(lpn)
        lpn += 1
    return written


class TestTriggerPolicy:
    def test_fresh_plane_does_not_need_gc(self, gc_setup):
        _, gc = gc_setup
        assert not gc.plane_needs_gc((0, 0), 0, 0)

    def test_disabled_gc_never_triggers(self, gc_setup, small_geometry):
        ftl, gc = gc_setup
        gc.enabled = False
        fill_plane(ftl, small_geometry, (0, 0), 0, 0, small_geometry.blocks_per_plane - 1)
        assert not gc.plane_needs_gc((0, 0), 0, 0)

    def test_triggers_below_watermark_with_victim(self, gc_setup, small_geometry):
        ftl, gc = gc_setup
        fill_plane(ftl, small_geometry, (0, 0), 0, 0, small_geometry.blocks_per_plane - 1)
        assert gc.plane_needs_gc((0, 0), 0, 0)

    def test_planes_needing_gc_lists_only_affected(self, gc_setup, small_geometry):
        ftl, gc = gc_setup
        fill_plane(ftl, small_geometry, (0, 0), 0, 0, small_geometry.blocks_per_plane - 1)
        # Filling stripes over all planes, so potentially several planes are
        # low; the one we targeted must be among them.
        assert (0, 0) in gc.planes_needing_gc((0, 0)) or gc.planes_needing_gc((0, 0))


class TestCollection:
    def test_collect_erases_victim_and_migrates_valid(self, gc_setup, small_geometry):
        ftl, gc = gc_setup
        written = fill_plane(
            ftl, small_geometry, (0, 0), 0, 0, small_geometry.blocks_per_plane - 1
        )
        # Invalidate some pages so the victim is cheap but not empty.
        for lpn in written[: len(written) // 2]:
            ftl.translate_write(lpn)
        job = gc.collect((0, 0), 0, 0)
        assert job is not None
        assert job.duration_ns > 0
        assert gc.stats.blocks_erased == 1
        # Every migrated LPN still resolves to live data.
        for lpn in job.migrated_lpns:
            assert ftl.lookup(lpn) is not None

    def test_collect_without_victim_returns_none(self, gc_setup):
        _, gc = gc_setup
        assert gc.collect((0, 0), 0, 0) is None

    def test_collect_duration_includes_erase(self, gc_setup, small_geometry, fast_timing):
        ftl, gc = gc_setup
        fill_plane(ftl, small_geometry, (0, 0), 0, 0, small_geometry.blocks_per_plane - 1)
        job = gc.collect((0, 0), 0, 0)
        assert job.duration_ns >= fast_timing.erase_latency_ns()
        expected_migration_floor = job.pages_moved * fast_timing.read_latency_ns()
        assert job.duration_ns >= expected_migration_floor

    def test_collect_plane_if_needed_respects_watermark(self, gc_setup):
        _, gc = gc_setup
        assert gc.collect_plane_if_needed((0, 0), 0, 0) is None

    def test_collect_if_needed_returns_jobs(self, gc_setup, small_geometry):
        ftl, gc = gc_setup
        fill_plane(ftl, small_geometry, (0, 0), 0, 0, small_geometry.blocks_per_plane - 1)
        jobs = gc.collect_if_needed((0, 0))
        assert jobs
        assert all(job.chip_key == (0, 0) for job in jobs)

    def test_migrations_stay_in_plane_when_possible(self, gc_setup, small_geometry):
        ftl, gc = gc_setup
        written = fill_plane(
            ftl, small_geometry, (0, 0), 0, 0, small_geometry.blocks_per_plane - 1
        )
        for lpn in written[: len(written) // 2]:
            ftl.translate_write(lpn)
        job = gc.collect((0, 0), 0, 0)
        for old, new in job.moves:
            assert old.chip_key == (0, 0)
            # Preferred placement keeps the copy in the same plane unless full.
            assert new.chip_key == (0, 0) or new.plane_key != old.plane_key

    def test_stats_accumulate(self, gc_setup, small_geometry):
        ftl, gc = gc_setup
        fill_plane(ftl, small_geometry, (0, 0), 0, 0, small_geometry.blocks_per_plane - 1)
        before = gc.stats.invocations
        gc.collect((0, 0), 0, 0)
        assert gc.stats.invocations == before + 1
        assert gc.stats.total_gc_time_ns > 0

    def test_clean_collection_reports_zero_orphans(self, gc_setup, small_geometry):
        ftl, gc = gc_setup
        written = fill_plane(
            ftl, small_geometry, (0, 0), 0, 0, small_geometry.blocks_per_plane - 1
        )
        for lpn in written[: len(written) // 2]:
            ftl.translate_write(lpn)
        gc.collect((0, 0), 0, 0)
        assert gc.stats.orphaned_pages == 0

    def test_orphaned_valid_pages_are_counted(self, gc_setup, small_geometry):
        """A valid bit without a reverse mapping is a bookkeeping bug; GC
        must surface it in the stats instead of dropping it silently."""
        ftl, gc = gc_setup
        fill_plane(ftl, small_geometry, (0, 0), 0, 0, small_geometry.blocks_per_plane - 1)
        # Corrupt the bookkeeping: program pages behind the FTL's back so
        # they are valid-marked but unmapped, and make the block the
        # cheapest (fewest-valid) victim so greedy selection picks it.
        plane_obj = ftl.chips[(0, 0)].plane(0, 0)
        free_block = next(block for block in plane_obj.blocks if block.is_free)
        orphans = 2
        free_block.program_bulk(orphans)
        while not free_block.is_full:
            free_block.invalidate(free_block.program_next())
        job = gc.collect((0, 0), 0, 0)
        assert job is not None
        assert job.victim_block == free_block.block_id
        assert job.pages_moved == 0
        assert gc.stats.orphaned_pages == orphans

    def test_history_records_job_sequence(self, gc_setup, small_geometry):
        ftl, gc = gc_setup
        written = fill_plane(
            ftl, small_geometry, (0, 0), 0, 0, small_geometry.blocks_per_plane - 1
        )
        for lpn in written[: len(written) // 2]:
            ftl.translate_write(lpn)
        job = gc.collect((0, 0), 0, 0)
        assert list(gc.history) == [((0, 0), 0, 0, job.victim_block, job.pages_moved)]
