"""Tests for SSD geometry and physical addressing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash.geometry import PhysicalPageAddress, SSDGeometry


def make_geometry(**overrides):
    values = dict(
        num_channels=4,
        chips_per_channel=2,
        dies_per_chip=2,
        planes_per_die=2,
        blocks_per_plane=4,
        pages_per_block=8,
        page_size_bytes=2048,
    )
    values.update(overrides)
    return SSDGeometry(**values)


class TestDerivedSizes:
    def test_num_chips(self):
        assert make_geometry().num_chips == 8

    def test_num_dies(self):
        assert make_geometry().num_dies == 16

    def test_num_planes(self):
        assert make_geometry().num_planes == 32

    def test_planes_per_chip(self):
        assert make_geometry().planes_per_chip == 4

    def test_pages_per_plane(self):
        assert make_geometry().pages_per_plane == 32

    def test_pages_per_die(self):
        assert make_geometry().pages_per_die == 64

    def test_pages_per_chip(self):
        assert make_geometry().pages_per_chip == 128

    def test_pages_per_channel(self):
        assert make_geometry().pages_per_channel == 256

    def test_total_pages(self):
        assert make_geometry().total_pages == 1024

    def test_capacity_bytes(self):
        assert make_geometry().capacity_bytes == 1024 * 2048

    def test_block_size_bytes(self):
        assert make_geometry().block_size_bytes == 8 * 2048


class TestValidation:
    @pytest.mark.parametrize(
        "field",
        [
            "num_channels",
            "chips_per_channel",
            "dies_per_chip",
            "planes_per_die",
            "blocks_per_plane",
            "pages_per_block",
            "page_size_bytes",
        ],
    )
    def test_rejects_non_positive(self, field):
        with pytest.raises(ValueError):
            make_geometry(**{field: 0})

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            make_geometry(num_channels=-1)


class TestChipEnumeration:
    def test_chip_index_is_channel_striped(self):
        geometry = make_geometry()
        # Chips at offset 0 of every channel come first.
        assert geometry.chip_index(0, 0) == 0
        assert geometry.chip_index(1, 0) == 1
        assert geometry.chip_index(3, 0) == 3
        assert geometry.chip_index(0, 1) == 4

    def test_chip_index_round_trip(self):
        geometry = make_geometry()
        for index in range(geometry.num_chips):
            channel, chip = geometry.chip_coordinates(index)
            assert geometry.chip_index(channel, chip) == index

    def test_chip_index_out_of_range(self):
        geometry = make_geometry()
        with pytest.raises(ValueError):
            geometry.chip_index(4, 0)
        with pytest.raises(ValueError):
            geometry.chip_coordinates(8)

    def test_iter_chip_keys_covers_all_chips(self):
        geometry = make_geometry()
        keys = list(geometry.iter_chip_keys())
        assert len(keys) == geometry.num_chips
        assert len(set(keys)) == geometry.num_chips

    def test_iter_chip_keys_matches_rios_order(self):
        geometry = make_geometry()
        keys = list(geometry.iter_chip_keys())
        # First num_channels entries are all the offset-0 chips.
        assert keys[: geometry.num_channels] == [
            (channel, 0) for channel in range(geometry.num_channels)
        ]


class TestAddressConversion:
    def test_ppn_zero(self):
        geometry = make_geometry()
        address = geometry.ppn_to_address(0)
        assert address == PhysicalPageAddress(0, 0, 0, 0, 0, 0)

    def test_last_ppn(self):
        geometry = make_geometry()
        address = geometry.ppn_to_address(geometry.total_pages - 1)
        assert address.channel == geometry.num_channels - 1
        assert address.page == geometry.pages_per_block - 1

    def test_round_trip_samples(self):
        geometry = make_geometry()
        for ppn in range(0, geometry.total_pages, 7):
            assert geometry.address_to_ppn(geometry.ppn_to_address(ppn)) == ppn

    def test_out_of_range_ppn(self):
        geometry = make_geometry()
        with pytest.raises(ValueError):
            geometry.ppn_to_address(geometry.total_pages)
        with pytest.raises(ValueError):
            geometry.ppn_to_address(-1)

    def test_invalid_address_rejected(self):
        geometry = make_geometry()
        bad = PhysicalPageAddress(channel=99, chip=0, die=0, plane=0, block=0, page=0)
        with pytest.raises(ValueError):
            geometry.address_to_ppn(bad)

    @given(ppn=st.integers(min_value=0, max_value=1023))
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, ppn):
        geometry = make_geometry()
        assert geometry.address_to_ppn(geometry.ppn_to_address(ppn)) == ppn


class TestAddressHelpers:
    def test_chip_die_plane_keys(self):
        address = PhysicalPageAddress(1, 2, 1, 0, 3, 4)
        assert address.chip_key == (1, 2)
        assert address.die_key == (1, 2, 1)
        assert address.plane_key == (1, 2, 1, 0)

    def test_with_block_page(self):
        address = PhysicalPageAddress(1, 2, 1, 0, 3, 4)
        moved = address.with_block_page(5, 6)
        assert moved.block == 5 and moved.page == 6
        assert moved.chip_key == address.chip_key

    def test_addresses_are_hashable_and_ordered(self):
        a = PhysicalPageAddress(0, 0, 0, 0, 0, 0)
        b = PhysicalPageAddress(0, 0, 0, 0, 0, 1)
        assert a < b
        assert len({a, b}) == 2


class TestLogicalHelpers:
    def test_bytes_to_pages(self):
        geometry = make_geometry()
        assert geometry.bytes_to_pages(1) == 1
        assert geometry.bytes_to_pages(2048) == 1
        assert geometry.bytes_to_pages(2049) == 2
        assert geometry.bytes_to_pages(0) == 1

    def test_lba_to_lpn(self):
        geometry = make_geometry()
        assert geometry.lba_to_lpn(0) == 0
        assert geometry.lba_to_lpn(2047) == 0
        assert geometry.lba_to_lpn(2048) == 1

    def test_lba_to_lpn_negative(self):
        with pytest.raises(ValueError):
            make_geometry().lba_to_lpn(-1)

    def test_scaled_returns_modified_copy(self):
        geometry = make_geometry()
        bigger = geometry.scaled(num_channels=8)
        assert bigger.num_channels == 8
        assert bigger.chips_per_channel == geometry.chips_per_channel
        assert geometry.num_channels == 4
