"""Tests for workload generators and trace tooling."""

import pytest

from repro.workloads.datacenter import (
    DATACENTER_TRACE_NAMES,
    datacenter_profile,
    generate_datacenter_trace,
    trace_table_row,
)
from repro.workloads.request import IOKind
from repro.workloads.synthetic import (
    SyntheticWorkloadConfig,
    generate_mixed_workload,
    generate_random_workload,
    generate_sequential_workload,
    generate_transfer_size_sweep,
)
from repro.workloads.traces import (
    TraceFormatError,
    load_msr_trace,
    parse_msr_line,
    records_to_requests,
)

KB = 1024


class TestSyntheticGenerators:
    def test_request_count_and_size(self):
        workload = generate_random_workload(num_requests=32, size_bytes=8 * KB)
        assert len(workload) == 32
        assert all(io.size_bytes == 8 * KB for io in workload)

    def test_deterministic_for_seed(self):
        first = generate_random_workload(num_requests=16, size_bytes=4 * KB, seed=3)
        second = generate_random_workload(num_requests=16, size_bytes=4 * KB, seed=3)
        assert [io.offset_bytes for io in first] == [io.offset_bytes for io in second]

    def test_different_seeds_differ(self):
        first = generate_random_workload(num_requests=16, size_bytes=4 * KB, seed=1)
        second = generate_random_workload(num_requests=16, size_bytes=4 * KB, seed=2)
        assert [io.offset_bytes for io in first] != [io.offset_bytes for io in second]

    def test_read_fraction_zero_means_all_writes(self):
        workload = generate_random_workload(
            num_requests=20, size_bytes=4 * KB, read_fraction=0.0
        )
        assert all(io.is_write for io in workload)

    def test_offsets_aligned_and_bounded(self):
        config = SyntheticWorkloadConfig(
            num_requests=64, size_bytes=16 * KB, address_space_bytes=4 * 1024 * KB
        )
        workload = generate_mixed_workload(config)
        for io in workload:
            assert io.offset_bytes % config.align_bytes == 0
            assert io.end_offset_bytes <= config.address_space_bytes

    def test_arrival_times_increase(self):
        workload = generate_random_workload(num_requests=10, size_bytes=4 * KB)
        arrivals = [io.arrival_ns for io in workload]
        assert arrivals == sorted(arrivals)

    def test_sequential_workload_is_contiguous(self):
        workload = generate_sequential_workload(num_requests=8, size_bytes=4 * KB)
        for earlier, later in zip(workload, workload[1:]):
            assert later.offset_bytes == earlier.end_offset_bytes

    def test_sequential_wraps_at_address_space(self):
        workload = generate_sequential_workload(
            num_requests=4, size_bytes=4 * KB, address_space_bytes=8 * KB
        )
        assert all(io.end_offset_bytes <= 8 * KB for io in workload)

    def test_transfer_size_sweep_shapes(self):
        sweep = generate_transfer_size_sweep([4 * KB, 16 * KB], requests_per_size=8)
        assert [size for size, _ in sweep] == [4 * KB, 16 * KB]
        assert all(len(workload) == 8 for _, workload in sweep)

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(num_requests=0),
            dict(size_bytes=0),
            dict(read_fraction=2.0),
            dict(randomness=-0.1),
            dict(address_space_bytes=1),
            dict(interarrival_ns=-1),
            dict(align_bytes=0),
        ],
    )
    def test_config_validation(self, overrides):
        values = dict(num_requests=4, size_bytes=4 * KB)
        values.update(overrides)
        with pytest.raises(ValueError):
            SyntheticWorkloadConfig(**values)

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(num_requests=0),
            dict(size_bytes=-4096),
            dict(interarrival_ns=-1),
            dict(start_offset_bytes=-1),
        ],
    )
    def test_sequential_generator_validation(self, overrides):
        values = dict(num_requests=4, size_bytes=4 * KB)
        values.update(overrides)
        num_requests = values.pop("num_requests")
        size_bytes = values.pop("size_bytes")
        with pytest.raises(ValueError):
            generate_sequential_workload(num_requests, size_bytes, **values)


class TestDatacenterTraces:
    def test_all_sixteen_traces_defined(self):
        assert len(DATACENTER_TRACE_NAMES) == 16
        assert "cfs0" in DATACENTER_TRACE_NAMES and "proj4" in DATACENTER_TRACE_NAMES

    def test_profile_lookup_and_error(self):
        profile = datacenter_profile("msnfs2")
        assert profile.locality == "high"
        with pytest.raises(KeyError):
            datacenter_profile("unknown")

    def test_table_row_fields(self):
        row = trace_table_row("cfs0")
        assert row["trace"] == "cfs0"
        assert row["read_mb"] == 3607
        assert row["locality"] == "low"

    def test_generated_trace_matches_read_fraction(self):
        profile = datacenter_profile("hm1")  # strongly read-dominant
        trace = generate_datacenter_trace("hm1", num_requests=400, seed=1)
        reads = sum(1 for io in trace if not io.is_write)
        assert reads / len(trace) == pytest.approx(profile.read_fraction, abs=0.1)

    def test_write_heavy_trace(self):
        trace = generate_datacenter_trace("msnfs0", num_requests=300, seed=1)
        writes = sum(1 for io in trace if io.is_write)
        assert writes / len(trace) > 0.8

    def test_trace_is_deterministic_for_seed(self):
        first = generate_datacenter_trace("proj0", num_requests=50, seed=9)
        second = generate_datacenter_trace("proj0", num_requests=50, seed=9)
        assert [(io.offset_bytes, io.size_bytes) for io in first] == [
            (io.offset_bytes, io.size_bytes) for io in second
        ]

    def test_offsets_page_aligned(self):
        trace = generate_datacenter_trace("cfs3", num_requests=100, seed=2)
        assert all(io.offset_bytes % 2048 == 0 for io in trace)

    def test_sizes_bounded(self):
        trace = generate_datacenter_trace("proj2", num_requests=100, seed=2)
        assert all(2048 <= io.size_bytes <= 4 * 1024 * KB for io in trace)

    def test_high_locality_trace_reuses_neighbourhoods(self):
        trace = generate_datacenter_trace("msnfs3", num_requests=200, seed=5)
        offsets = [io.offset_bytes for io in trace]
        # With high locality many requests land within a window of a recent one.
        close_pairs = sum(
            1
            for a, b in zip(offsets, offsets[1:])
            if abs(a - b) <= 1024 * KB
        )
        assert close_pairs > 20


class TestMsrTraces:
    LINE = "128166372003061629,hm,0,Read,8192,4096,1331"

    def test_parse_line(self):
        record = parse_msr_line(self.LINE)
        assert record.kind is IOKind.READ
        assert record.offset_bytes == 8192
        assert record.size_bytes == 4096
        assert record.hostname == "hm"
        assert record.timestamp_ns == 128166372003061629 * 100

    def test_parse_write_line(self):
        record = parse_msr_line("1,host,2,Write,0,512,10")
        assert record.kind is IOKind.WRITE
        assert record.disk_number == 2

    @pytest.mark.parametrize(
        "line",
        [
            "too,few,fields",
            "1,h,0,Flush,0,512,10",
            "1,h,0,Read,0,0,10",
            "1,h,0,Read,-5,512,10",
            "x,h,0,Read,0,512,10",
        ],
    )
    def test_parse_rejects_malformed(self, line):
        with pytest.raises(TraceFormatError):
            parse_msr_line(line)

    def test_load_msr_trace(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "\n".join(
                [
                    "100,host,0,Read,0,4096,10",
                    "not,a,valid,line",
                    "200,host,1,Write,8192,2048,20",
                    "300,host,0,Read,16384,4096,30",
                ]
            )
        )
        records = load_msr_trace(path)
        assert len(records) == 3
        only_disk0 = load_msr_trace(path, disk_number=0)
        assert len(only_disk0) == 2
        limited = load_msr_trace(path, max_records=1)
        assert len(limited) == 1

    def test_load_strict_mode_raises(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("garbage,line\n")
        with pytest.raises(TraceFormatError):
            load_msr_trace(path, skip_malformed=False)

    def test_records_to_requests_rebase_and_wrap(self):
        records = [
            parse_msr_line("1000,h,0,Read,10000,4096,1"),
            parse_msr_line("2000,h,0,Write,900000,4096,1"),
        ]
        requests = records_to_requests(records, address_space_bytes=65536)
        assert requests[0].arrival_ns == 0
        assert requests[1].arrival_ns == 100_000
        assert all(io.offset_bytes < 65536 for io in requests)

    def test_records_to_requests_time_scale(self):
        records = [
            parse_msr_line("0,h,0,Read,0,4096,1"),
            parse_msr_line("1000,h,0,Read,0,4096,1"),
        ]
        requests = records_to_requests(records, time_scale=0.5)
        assert requests[1].arrival_ns == 50_000

    def test_records_to_requests_empty(self):
        assert records_to_requests([]) == []

    def test_fixture_round_trip(self, tmp_path):
        """Load a fixture CSV and convert it end-to-end.

        Covers the filetime conversion (100ns ticks -> ns), malformed-line
        skipping, blank lines, the disk filter and the record->request
        round-trip in one pass.
        """
        path = tmp_path / "fixture.csv"
        path.write_text(
            "\n".join(
                [
                    "128166372003061629,srv,0,Read,8192,4096,1331",
                    "",
                    "totally,not,a,trace,line",
                    "128166372003071629,srv,1,Write,0,512,10",
                    "128166372003081629.0,srv,0,Write,16384,8192,20",
                ]
            )
        )
        records = load_msr_trace(path)
        assert len(records) == 3
        assert records[0].timestamp_ns == 128166372003061629 * 100
        assert records[2].timestamp_ns == 128166372003081629 * 100

        disk0 = load_msr_trace(path, disk_number=0)
        assert [record.offset_bytes for record in disk0] == [8192, 16384]

        requests = records_to_requests(disk0)
        assert requests[0].arrival_ns == 0
        # 20_000 ticks between the two disk-0 records = 2_000_000 ns.
        assert requests[1].arrival_ns == 2_000_000
        assert [(io.kind, io.offset_bytes, io.size_bytes) for io in requests] == [
            (IOKind.READ, 8192, 4096),
            (IOKind.WRITE, 16384, 8192),
        ]

    def test_wrap_clamp_respects_alignment(self):
        # Offset wraps to 4 KB below the end of a 64 KB space; the 16 KB
        # request must be clamped to the remaining 4 KB, not to 1 byte.
        records = [parse_msr_line("1000,h,0,Read,126976,16384,1")]
        requests = records_to_requests(records, address_space_bytes=65536)
        io = requests[0]
        assert io.offset_bytes == 61440
        assert io.size_bytes == 4096
        assert io.size_bytes % 512 == 0
        assert io.end_offset_bytes <= 65536

    def test_wrap_clamp_never_emits_sub_align_requests(self):
        # Even when the wrapped offset sits at the last aligned slot, the
        # clamped size stays a whole alignment unit.
        records = [parse_msr_line("1000,h,0,Write,65024,4096,1")]
        requests = records_to_requests(records, address_space_bytes=65536)
        assert requests[0].size_bytes == 512
        assert requests[0].offset_bytes + requests[0].size_bytes == 65536

    def test_wrap_aligns_offsets(self):
        # A misaligned trace offset is aligned down when wrapping.
        records = [parse_msr_line("1000,h,0,Read,66100,512,1")]
        requests = records_to_requests(
            records, address_space_bytes=65536, align_bytes=512
        )
        assert requests[0].offset_bytes == 512
        assert requests[0].offset_bytes % 512 == 0

    def test_equal_arrivals_keep_record_order(self):
        # time_scale=0 collapses every arrival to 0: the sort tie-break must
        # preserve the original record order, not reshuffle it.
        records = [
            parse_msr_line(f"{1000 + tick},h,0,Read,{tick * 4096},4096,1")
            for tick in range(8)
        ]
        requests = records_to_requests(records, time_scale=0.0)
        assert all(io.arrival_ns == 0 for io in requests)
        assert [io.offset_bytes for io in requests] == [tick * 4096 for tick in range(8)]

    def test_records_to_requests_validation(self):
        records = [parse_msr_line("1000,h,0,Read,0,4096,1")]
        with pytest.raises(ValueError):
            records_to_requests(records, align_bytes=0)
        with pytest.raises(ValueError):
            records_to_requests(records, address_space_bytes=1000, align_bytes=512)
