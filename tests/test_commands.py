"""Tests for flash operations, transaction kinds and FLP classification."""

import pytest

from repro.flash.commands import (
    FlashOp,
    ParallelismClass,
    TransactionKind,
    classify_parallelism,
    kind_for_parallelism,
)


class TestFlashOp:
    def test_program_is_write(self):
        assert FlashOp.PROGRAM.is_write
        assert not FlashOp.READ.is_write
        assert not FlashOp.ERASE.is_write

    def test_moves_data(self):
        assert FlashOp.READ.moves_data
        assert FlashOp.PROGRAM.moves_data
        assert not FlashOp.ERASE.moves_data


class TestClassification:
    def test_single_die_single_plane(self):
        assert classify_parallelism(1, 1) is ParallelismClass.NON_PAL

    def test_plane_sharing(self):
        assert classify_parallelism(1, 2) is ParallelismClass.PAL1

    def test_die_interleaving(self):
        assert classify_parallelism(2, 1) is ParallelismClass.PAL2

    def test_combined(self):
        assert classify_parallelism(2, 2) is ParallelismClass.PAL3
        assert classify_parallelism(4, 4) is ParallelismClass.PAL3

    @pytest.mark.parametrize("dies,planes", [(0, 1), (1, 0), (-1, 2)])
    def test_rejects_non_positive(self, dies, planes):
        with pytest.raises(ValueError):
            classify_parallelism(dies, planes)


class TestKindMapping:
    def test_non_pal_is_legacy(self):
        assert kind_for_parallelism(ParallelismClass.NON_PAL) is TransactionKind.LEGACY

    def test_pal1_is_multiplane(self):
        assert kind_for_parallelism(ParallelismClass.PAL1) is TransactionKind.MULTIPLANE

    def test_pal2_is_interleave(self):
        assert kind_for_parallelism(ParallelismClass.PAL2) is TransactionKind.INTERLEAVE

    def test_pal3_is_combined(self):
        assert (
            kind_for_parallelism(ParallelismClass.PAL3)
            is TransactionKind.INTERLEAVE_MULTIPLANE
        )


class TestLabels:
    def test_labels_match_paper(self):
        assert ParallelismClass.NON_PAL.label == "NON-PAL"
        assert ParallelismClass.PAL1.label == "PAL1"
        assert ParallelismClass.PAL2.label == "PAL2"
        assert ParallelismClass.PAL3.label == "PAL3"

    def test_class_ordering_by_value(self):
        assert ParallelismClass.NON_PAL.value < ParallelismClass.PAL3.value
