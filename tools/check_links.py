#!/usr/bin/env python3
"""Validate relative links in the repo's markdown documentation.

Scans README.md, ROADMAP.md, CHANGES.md and everything under docs/ for
markdown links and image references, and checks that every *relative*
target exists in the working tree.  Skipped on purpose:

* absolute URLs (``http://``, ``https://``, ``mailto:`` ...),
* pure in-page anchors (``#section``),
* targets that resolve *outside* the repo root (e.g. the README CI
  badge's ``../../actions/...`` path, which is a GitHub-side URL, not
  a file).

Anchors on relative links (``FILE.md#section``) are checked for the
file part only.  Exit status is the number of broken links, so CI can
run it bare.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Files and directories scanned for markdown links.
DOC_SOURCES = ("README.md", "ROADMAP.md", "CHANGES.md", "docs")

#: Inline links/images: [text](target) / ![alt](target).  Titles after the
#: target ("... (file.md \"title\")") are split off later.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^()\s]+(?:\([^()]*\))?[^()]*)\)")

#: Autolinks and reference definitions: <http://...> / [ref]: target
_REF_DEF_RE = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)

_EXTERNAL_SCHEMES = ("http://", "https://", "mailto:", "ftp://", "tel:")


def iter_doc_files(root: Path = REPO_ROOT) -> Iterator[Path]:
    """Yield every markdown file named by :data:`DOC_SOURCES`."""
    for source in DOC_SOURCES:
        path = root / source
        if path.is_dir():
            yield from sorted(path.rglob("*.md"))
        elif path.is_file():
            yield path


def extract_links(text: str) -> List[str]:
    """All link targets in ``text``, raw (schemes and anchors included)."""
    targets = [match.group(1) for match in _LINK_RE.finditer(text)]
    targets += [match.group(1) for match in _REF_DEF_RE.finditer(text)]
    return targets


def classify_link(doc: Path, target: str, root: Path = REPO_ROOT) -> Tuple[str, str]:
    """Return ``(status, detail)`` for one link target of ``doc``.

    ``status`` is ``"ok"``, ``"skipped"`` or ``"broken"``; ``detail``
    says why (scheme, anchor-only, outside-repo, missing path...).
    """
    target = target.strip().strip("<>")
    # Drop a markdown title suffix: (file.md "The title")
    target = target.split(" ", 1)[0]
    if not target:
        return "skipped", "empty"
    lowered = target.lower()
    if lowered.startswith(_EXTERNAL_SCHEMES):
        return "skipped", "external URL"
    if target.startswith("#"):
        return "skipped", "in-page anchor"
    path_part = target.split("#", 1)[0]
    if not path_part:
        return "skipped", "in-page anchor"
    if path_part.startswith("/"):
        return "broken", "absolute filesystem path"
    resolved = (doc.parent / path_part).resolve()
    try:
        resolved.relative_to(root)
    except ValueError:
        # e.g. the CI badge: ../../actions/... resolves above the repo,
        # because it is a GitHub web URL relative to the repo page.
        return "skipped", "resolves outside the repo"
    if resolved.exists():
        return "ok", str(resolved.relative_to(root))
    return "broken", f"missing: {path_part}"


def check_links(root: Path = REPO_ROOT) -> List[str]:
    """Return one problem line per broken link under ``root``."""
    problems: List[str] = []
    checked = 0
    for doc in iter_doc_files(root):
        text = doc.read_text(encoding="utf-8")
        for target in extract_links(text):
            status, detail = classify_link(doc, target, root)
            if status == "ok":
                checked += 1
            elif status == "broken":
                problems.append(f"{doc.relative_to(root)}: {target!r} ({detail})")
    print(f"checked {checked} relative links, {len(problems)} broken")
    return problems


def main() -> int:
    problems = check_links()
    for problem in problems:
        print(f"BROKEN {problem}", file=sys.stderr)
    return len(problems)


if __name__ == "__main__":
    sys.exit(main())
